"""Counters, gauges, and fixed-bucket histograms for simulator runs.

A :class:`MetricsRegistry` is the single handle instrumented code takes
(``metrics=None`` everywhere by default — the ``None`` check is the
zero-overhead switch).  Registered instruments:

* :class:`Counter` — monotone event counts (events dispatched, runaway
  guards tripped, violations seen);
* :class:`Gauge` — a last-value-plus-extremes sample (queue depth, cycle
  time);
* :class:`Histogram` — fixed-bucket distribution (skew per tick, service
  times, handshake stall times).  Buckets are inclusive upper edges: a
  value ``v`` lands in the first bucket whose edge satisfies ``v <=
  edge``; values beyond the last edge land in the overflow bucket.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Geometric default edges spanning the time scales the simulators emit
#: (sub-millisecond handshake wires up to 1e4-unit makespans).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0,
)


class Counter:
    """A monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last set value, with the min/max envelope seen so far."""

    __slots__ = ("name", "value", "minimum", "maximum", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)


class Histogram:
    """A fixed-bucket histogram with an overflow bucket.

    ``edges`` are sorted inclusive upper bounds.  ``counts`` has
    ``len(edges) + 1`` entries; the last is the overflow count for values
    strictly above the final edge.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = list(edges)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_labels(self) -> List[str]:
        labels = []
        lo = None
        for edge in self.edges:
            labels.append(f"<= {edge:g}" if lo is None else f"({lo:g}, {edge:g}]")
            lo = edge
        labels.append(f"> {self.edges[-1]:g}")
        return labels

    def nonzero_buckets(self) -> List[Tuple[str, int]]:
        return [
            (label, count)
            for label, count in zip(self.bucket_labels(), self.counts)
            if count
        ]


class MetricsRegistry:
    """Create-or-get registry for the three instrument kinds.

    Names are namespaced by convention (``"engine.queue_depth"``,
    ``"handshake.stall_time"``); re-requesting a name returns the same
    instrument, so producers never need to coordinate setup.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, edges)
        return self._histograms[name]

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    def to_dict(self) -> Dict[str, Dict]:
        """A JSON-serialisable snapshot of everything registered."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {
                    "value": g.value,
                    "min": g.minimum,
                    "max": g.maximum,
                    "samples": g.samples,
                }
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {
                    "edges": h.edges,
                    "counts": h.counts,
                    "total": h.total,
                    "mean": h.mean,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def render_rows(self) -> List[Tuple[str, str, str]]:
        """``(name, type, summary)`` rows for a plain-text metrics table."""
        rows: List[Tuple[str, str, str]] = []
        for name, c in sorted(self._counters.items()):
            rows.append((name, "counter", str(c.value)))
        for name, g in sorted(self._gauges.items()):
            rows.append(
                (
                    name,
                    "gauge",
                    f"last={g.value:g} min={g.minimum:g} max={g.maximum:g}"
                    if g.samples
                    else "no samples",
                )
            )
        for name, h in sorted(self._histograms.items()):
            rows.append(
                (name, "histogram", f"n={h.total} mean={h.mean:.4g}")
            )
        return rows
