"""Structured tracing for simulator runs and analysis pipelines.

A tracer receives :class:`TraceEvent` records — (time, category, kind,
cell, payload) — from instrumented code.  Three implementations:

* :class:`NullTracer` — the default everywhere; ``enabled`` is False so
  hot loops skip event construction entirely (zero overhead, and default
  runs stay byte-identical to uninstrumented ones);
* :class:`RecordingTracer` — keeps events in memory for tests and
  programmatic analysis;
* :class:`JsonlTracer` — streams one JSON object per line to a file,
  which ``python -m repro trace`` replays and summarises.

The event schema is deliberately flat so every producer (clocked arrays,
the event engine, the hybrid network, Monte-Carlo loops) shares it:

``t``
    event time — simulated time for simulator events, a step or trial
    index for analysis pipelines (the producer documents which);
``cat`` / ``kind``
    coarse category (``"tick"``, ``"violation"``, ``"engine"``, …) and
    the specific event within it (``"fire"``, ``"stale"``, ``"dispatch"``);
``cell``
    the cell / node / element the event concerns, or ``None``;
``data``
    a small JSON-serialisable payload.
"""

from __future__ import annotations

import json
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation from an instrumented run."""

    t: float
    cat: str
    kind: str
    cell: Any = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "t": self.t,
            "cat": self.cat,
            "kind": self.kind,
            "cell": _jsonable(self.cell),
            "data": {k: _jsonable(v) for k, v in self.data.items()},
        }

    @classmethod
    def from_json_obj(cls, obj: Dict[str, Any]) -> "TraceEvent":
        return cls(
            t=float(obj["t"]),
            cat=obj["cat"],
            kind=obj["kind"],
            cell=_dejsonable(obj.get("cell")),
            data=obj.get("data", {}),
        )


def _jsonable(value: Any):
    """Make cell ids / payload values JSON-serialisable (tuples become
    lists; everything unknown falls back to ``repr``)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _dejsonable(value: Any):
    """Round-trip helper: JSON arrays come back as tuples so cell ids
    like ``(r, c)`` stay hashable."""
    if isinstance(value, list):
        return tuple(_dejsonable(v) for v in value)
    return value


class Tracer:
    """Base tracer: records events; subclasses choose the sink.

    ``enabled`` is the zero-overhead switch — instrumented hot loops guard
    on it before building payloads, so a :class:`NullTracer` costs one
    attribute read per loop, nothing more.
    """

    enabled: bool = True

    def event(
        self,
        t: float,
        cat: str,
        kind: str,
        cell: Any = None,
        **data: Any,
    ) -> None:
        self.record(TraceEvent(t=t, cat=cat, kind=kind, cell=cell, data=data))

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @contextmanager
    def span(self, cat: str, kind: str, cell: Any = None, t: float = 0.0, **data: Any):
        """Measure a wall-clock span; one event is recorded on exit with
        the elapsed seconds in ``data["wall_s"]``."""
        if not self.enabled:
            yield self
            return
        t0 = _time.perf_counter()
        try:
            yield self
        finally:
            self.event(t, cat, kind, cell=cell, wall_s=_time.perf_counter() - t0, **data)

    def close(self) -> None:
        """Release any underlying resources (a no-op for most tracers)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer(Tracer):
    """Discards everything; ``enabled`` is False so callers skip payload
    construction.  The default tracer on every instrumented surface."""

    enabled = False

    def event(self, t, cat, kind, cell=None, **data) -> None:
        pass

    def record(self, event: TraceEvent) -> None:
        pass


#: Shared no-op tracer; instrumented code defaults to this instance.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Keeps every event in memory — for tests and in-process analysis."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def by_category(self, cat: str) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == cat]

    def by_kind(self, cat: str, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.cat == cat and e.kind == kind]

    def counts(self) -> Dict[tuple, int]:
        """``(cat, kind) -> count`` over everything recorded."""
        out: Dict[tuple, int] = {}
        for e in self.events:
            key = (e.cat, e.kind)
            out[key] = out.get(key, 0) + 1
        return out


class JsonlTracer(Tracer):
    """Streams events to a JSON-lines file as they happen.

    The file is line-buffered JSON — one ``TraceEvent.to_json_obj`` per
    line — so a crashed run still leaves a readable prefix behind.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w")
        self.events_written = 0

    def record(self, event: TraceEvent) -> None:
        if self._fh is None:
            raise ValueError(f"tracer for {self.path!r} is closed")
        self._fh.write(json.dumps(event.to_json_obj()) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_trace(path: str) -> Iterator[TraceEvent]:
    """Iterate the events of a JSONL trace file (blank lines skipped)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            yield TraceEvent.from_json_obj(json.loads(line))


def load_trace(path: str) -> List[TraceEvent]:
    """Read a whole JSONL trace into memory."""
    return list(read_trace(path))
