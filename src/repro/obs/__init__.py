"""Observability: tracing, spans, metrics, and profiling for the simulators.

Independent instruments, all zero-overhead when left at their defaults
(every instrumented surface takes ``tracer=None`` / ``metrics=None`` and
default runs stay byte-identical):

* :mod:`repro.obs.trace` — structured event recording
  (:class:`NullTracer`, :class:`RecordingTracer`, :class:`JsonlTracer`);
* :mod:`repro.obs.spans` — hierarchical causal spans layered on the
  event stream (:class:`SpanTracer`, :func:`assemble_spans`), with a
  picklable :class:`SpanContext` that survives process-pool boundaries;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  behind a :class:`MetricsRegistry` (labelled series supported);
* :mod:`repro.obs.profile` — nested wall-clock phase timers
  (:class:`Profiler` / :func:`profiled`).

Plus the consumers: :mod:`repro.obs.replay` summarises a recorded trace
(the ``python -m repro trace`` command), :mod:`repro.obs.critpath`
reconstructs the causal chain behind a reported makespan,
:mod:`repro.obs.dashboard` renders a trace as a terminal/HTML report,
:mod:`repro.obs.export` exposes metrics as Prometheus text or JSON
snapshots, and :mod:`repro.obs.schema` validates every JSON artifact the
layer emits.
"""

from repro.obs.trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    load_trace,
    read_trace,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseStat, Profiler, profiled
from repro.obs.replay import TraceSummary, summarize_trace
from repro.obs.spans import (
    Span,
    SpanContext,
    SpanTracer,
    assemble_spans,
    iter_spans,
    span_index,
)
from repro.obs.critpath import (
    CriticalPath,
    PathStep,
    clocked_critical_path,
    critical_path_from_trace,
    selftimed_critical_path,
)
from repro.obs.dashboard import (
    Dashboard,
    build_dashboard,
    render_dashboard,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.obs.export import (
    metrics_snapshot,
    render_prometheus,
    snapshot_delta,
)
from repro.obs.schema import (
    BENCHMARK_RESULT_SCHEMA,
    METRICS_SNAPSHOT_SCHEMA,
    SPAN_EVENT_SCHEMA,
    TRACE_EVENT_SCHEMA,
    validate,
    validate_benchmark_result,
    validate_metrics_snapshot,
    validate_span_event,
    validate_trace_event,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "TraceEvent",
    "read_trace",
    "load_trace",
    "Span",
    "SpanContext",
    "SpanTracer",
    "assemble_spans",
    "iter_spans",
    "span_index",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "Profiler",
    "PhaseStat",
    "profiled",
    "TraceSummary",
    "summarize_trace",
    "CriticalPath",
    "PathStep",
    "clocked_critical_path",
    "critical_path_from_trace",
    "selftimed_critical_path",
    "Dashboard",
    "build_dashboard",
    "render_dashboard",
    "render_dashboard_html",
    "render_dashboard_text",
    "metrics_snapshot",
    "render_prometheus",
    "snapshot_delta",
    "validate",
    "validate_trace_event",
    "validate_span_event",
    "validate_metrics_snapshot",
    "validate_benchmark_result",
    "TRACE_EVENT_SCHEMA",
    "SPAN_EVENT_SCHEMA",
    "METRICS_SNAPSHOT_SCHEMA",
    "BENCHMARK_RESULT_SCHEMA",
]
