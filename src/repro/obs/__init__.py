"""Observability: tracing, metrics, and profiling for the simulators.

Three independent instruments, all zero-overhead when left at their
defaults (every instrumented surface takes ``tracer=None`` /
``metrics=None`` and default runs stay byte-identical):

* :mod:`repro.obs.trace` — structured event recording
  (:class:`NullTracer`, :class:`RecordingTracer`, :class:`JsonlTracer`);
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.profile` — nested wall-clock phase timers
  (:class:`Profiler` / :func:`profiled`).

Plus the consumers: :mod:`repro.obs.replay` summarises a recorded trace
(the ``python -m repro trace`` command) and :mod:`repro.obs.schema`
validates the JSON artifacts the layer emits.
"""

from repro.obs.trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    load_trace,
    read_trace,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseStat, Profiler, profiled
from repro.obs.replay import TraceSummary, summarize_trace
from repro.obs.schema import (
    BENCHMARK_RESULT_SCHEMA,
    TRACE_EVENT_SCHEMA,
    validate,
    validate_benchmark_result,
    validate_trace_event,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "TraceEvent",
    "read_trace",
    "load_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "Profiler",
    "PhaseStat",
    "profiled",
    "TraceSummary",
    "summarize_trace",
    "validate",
    "validate_trace_event",
    "validate_benchmark_result",
    "TRACE_EVENT_SCHEMA",
    "BENCHMARK_RESULT_SCHEMA",
]
