"""Critical-path forensics: *which chain of events* set the number.

The paper's headline quantities — clocked settling time and self-timed
makespan — are maxima over causal chains: some sequence of clock ticks,
cell firings, and wire hops is the binding constraint, and every other
event had slack.  The simulators report only the final number; this
module reconstructs the chain behind it, three ways:

* :func:`clocked_critical_path` — from the schedule itself (the clocked
  makespan is the latest (cell, tick) firing instant, so the chain is
  that cell's clock history);
* :func:`selftimed_critical_path` — by re-running the tandem recurrence
  ``start[c][k] = max(finish[c][k-1], max_pred finish[p][k-1] + wire)``
  with argmax bookkeeping and backtracking from the latest finisher;
* :func:`critical_path_from_trace` — from a recorded JSONL trace, using
  the causal ``dataflow/fire`` annotations (``cause``/``src``) or the
  clocked ``tick/fire`` stream.

Exactness is the contract, not an aspiration: every extractor performs
the *same float operations* as the engine it explains (ties broken the
way ``max`` breaks them, no re-summation — the makespan is read off the
final step, never re-accumulated), so :attr:`CriticalPath.exact` is a
bit-for-bit comparison and the property suite holds it at zero diff
over randomized designs on both the scalar and compiled engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.trace import TraceEvent

CellId = Hashable

__all__ = [
    "CriticalPath",
    "PathStep",
    "clocked_critical_path",
    "critical_path_from_trace",
    "selftimed_critical_path",
]


@dataclass(frozen=True)
class PathStep:
    """One link of the chain: an interval attributed to a cell or wire.

    ``kind`` is one of ``"clock_offset"`` (waiting for a cell's first
    tick), ``"clock_tick"`` (one clock period at a cell), ``"compute"``
    (one cell firing's service time), ``"wire"`` (token propagation
    ``src -> cell``), or ``"credit"`` (a finite channel's backpressure
    wait: the binding event was a *successor* ``src`` starting a wave
    and freeing a channel slot).  ``index`` is the tick/wave the step
    belongs to.
    """

    kind: str
    cell: CellId
    t_start: float
    t_end: float
    src: Optional[CellId] = None
    index: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def label(self) -> str:
        if self.kind in ("wire", "credit"):
            return f"{self.src!r}->{self.cell!r}"
        return repr(self.cell)


@dataclass
class CriticalPath:
    """The reconstructed chain plus the makespan it telescopes to.

    ``makespan`` is the chain's own endpoint (``steps[-1].t_end``, or 0
    for an empty chain); ``reported`` is the engine-reported value when
    one was available to cross-check.  :attr:`exact` is bitwise.
    """

    engine: str
    steps: List[PathStep]
    makespan: float
    reported: Optional[float] = None

    @property
    def exact(self) -> bool:
        """Bit-for-bit agreement with the engine-reported value."""
        return self.reported is None or self.reported == self.makespan

    def blame(self) -> List[Tuple[str, str, float, float]]:
        """Per-cell/edge attribution: ``(label, kind, seconds, share)``
        rows sorted by descending share of the end-to-end time."""
        totals: Dict[Tuple[str, str], float] = {}
        for step in self.steps:
            key = (step.label(), step.kind)
            totals[key] = totals.get(key, 0.0) + step.duration
        span = self.makespan if self.makespan > 0 else 0.0
        rows = [
            (label, kind, seconds, (seconds / span) if span else 0.0)
            for (label, kind), seconds in totals.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return rows


# ----------------------------------------------------------------------
# clocked (schedule-driven) chains
# ----------------------------------------------------------------------
def _clocked_chain(
    tick_time: Callable[[CellId, int], float],
    cells: Sequence[CellId],
    n_ticks: int,
) -> Tuple[List[PathStep], float]:
    """The chain ending at the globally latest (cell, tick) firing.

    Argmax ties break exactly like the scalar run loop: events sorted by
    ``(t, tick, cell position)`` and the max updated on strict ``>``
    keep the first achiever, i.e. the smallest ``(tick, position)``.
    """
    times: Dict[Tuple[int, int], float] = {}
    for i, c in enumerate(cells):
        for k in range(n_ticks):
            times[(i, k)] = tick_time(c, k)
    # Two passes keep the tie-break explicit: find the max (clamped at
    # 0.0, matching the scalar loop's ``makespan = 0.0`` start), then
    # the first (tick, position) that attains it.
    best_t = 0.0
    for t in times.values():
        if t > best_t:
            best_t = t
    candidates = sorted(
        (k, i) for (i, k), t in times.items() if t == best_t
    )
    if not candidates or best_t <= 0.0:
        return [], best_t if best_t > 0.0 else 0.0
    k_star, i_star = candidates[0]
    cell = cells[i_star]
    steps: List[PathStep] = [
        PathStep("clock_offset", cell, 0.0, times[(i_star, 0)], index=0)
    ]
    for k in range(1, k_star + 1):
        steps.append(
            PathStep(
                "clock_tick",
                cell,
                times[(i_star, k - 1)],
                times[(i_star, k)],
                index=k,
            )
        )
    return steps, best_t


def clocked_critical_path(
    schedule: Any,
    cells: Sequence[CellId],
    n_ticks: int,
    reported: Optional[float] = None,
) -> CriticalPath:
    """The chain behind a clocked run's makespan.

    The clocked makespan is ``max over (cell, tick) of tick_time`` —
    both the scalar loop and the compiled kernel compute exactly that —
    so the critical chain is the latest-firing cell's clock history:
    its offset, then one step per period (or per jittered tick) up to
    the final tick.  ``schedule`` is anything with ``tick_time(cell,
    k)`` (a :class:`~repro.sim.clock_distribution.ClockSchedule` or a
    faulted subclass).
    """
    if n_ticks < 1:
        raise ValueError("need at least one tick")
    steps, makespan = _clocked_chain(schedule.tick_time, list(cells), n_ticks)
    return CriticalPath("clocked", steps, makespan, reported)


# ----------------------------------------------------------------------
# self-timed (tandem recurrence) chains
# ----------------------------------------------------------------------
def selftimed_critical_path(
    comm: Any,
    service: Callable[[CellId, int], float],
    wire_delay: float,
    n_waves: int,
    reported: Optional[float] = None,
) -> CriticalPath:
    """The chain behind a self-timed makespan, by replaying the tandem
    recurrence with argmax bookkeeping.

    Performs the identical float operations, in the identical order, as
    :meth:`~repro.sim.dataflow.SelfTimedProgramSimulator.
    recurrence_makespan_scalar` — including ``max`` keeping its first
    argument on ties (updates only on strict ``>``), so the recovered
    chain's endpoint *is* the reported makespan, bit for bit.
    """
    if n_waves < 1:
        raise ValueError("need at least one wave")
    cells: List[CellId] = list(comm.nodes())
    preds: Dict[CellId, List[CellId]] = {
        c: list(comm.predecessors(c)) for c in cells
    }
    finish: Dict[CellId, float] = {c: 0.0 for c in cells}
    starts: List[Dict[CellId, float]] = []
    finishes: List[Dict[CellId, float]] = []
    # choice[k][c]: None = own previous wave (or t=0 at wave 0), else the
    # predecessor whose arrival was binding.
    choices: List[Dict[CellId, Optional[CellId]]] = []
    for k in range(n_waves):
        new_finish: Dict[CellId, float] = {}
        start_row: Dict[CellId, float] = {}
        choice_row: Dict[CellId, Optional[CellId]] = {}
        for c in cells:
            start = finish[c]
            chosen: Optional[CellId] = None
            if k > 0:
                for p in preds[c]:
                    arrival = finish[p] + wire_delay
                    if arrival > start:  # max(start, arrival): tie keeps start
                        start = arrival
                        chosen = p
            start_row[c] = start
            choice_row[c] = chosen
            new_finish[c] = start + service(c, k)
        starts.append(start_row)
        finishes.append(new_finish)
        choices.append(choice_row)
        finish = new_finish
    if not cells:
        return CriticalPath("selftimed", [], 0.0, reported)
    # max(finish.values()) keeps the first achiever in cell order.
    terminal = cells[0]
    for c in cells[1:]:
        if finish[c] > finish[terminal]:
            terminal = c
    makespan = finish[terminal]
    steps: List[PathStep] = []
    c, k = terminal, n_waves - 1
    while k >= 0:
        steps.append(
            PathStep("compute", c, starts[k][c], finishes[k][c], index=k)
        )
        chosen = choices[k][c]
        if chosen is not None:
            steps.append(
                PathStep(
                    "wire",
                    c,
                    finishes[k - 1][chosen],
                    starts[k][c],
                    src=chosen,
                    index=k,
                )
            )
            c = chosen
        k -= 1
    steps.reverse()
    return CriticalPath("selftimed", steps, makespan, reported)


# ----------------------------------------------------------------------
# trace-driven reconstruction
# ----------------------------------------------------------------------
def _from_dataflow_trace(
    fires: List[TraceEvent], reported: Optional[float]
) -> CriticalPath:
    records: Dict[Tuple[CellId, int], TraceEvent] = {}
    for e in fires:
        wave = e.data.get("wave")
        if isinstance(wave, int):
            records.setdefault((e.cell, wave), e)
    if not records:
        raise ValueError("trace has no dataflow/fire events with wave data")
    enriched = all(
        "finish" in e.data and "cause" in e.data for e in records.values()
    )
    if not enriched:
        raise ValueError(
            "dataflow/fire events lack causal annotations (finish/cause); "
            "re-record the trace with this version"
        )
    terminal_key = None
    terminal_finish = 0.0
    for key, e in records.items():
        f = float(e.data["finish"])
        if terminal_key is None or f > terminal_finish:
            terminal_key, terminal_finish = key, f
    assert terminal_key is not None
    steps: List[PathStep] = []
    cell, wave = terminal_key
    while wave >= 0:
        e = records.get((cell, wave))
        if e is None:
            raise ValueError(
                f"trace is missing the fire event for cell {cell!r} wave {wave}"
            )
        start = float(e.data.get("start", e.t))
        fin = float(e.data["finish"])
        steps.append(PathStep("compute", cell, start, fin, index=wave))
        cause = e.data.get("cause")
        if cause == "token":
            src = e.data.get("src")
            src_e = records.get((src, wave - 1))
            if src_e is None:
                raise ValueError(
                    f"trace is missing the fire event for cell {src!r} "
                    f"wave {wave - 1} (cause of {cell!r} wave {wave})"
                )
            steps.append(
                PathStep(
                    "wire",
                    cell,
                    float(src_e.data["finish"]),
                    start,
                    src=src,
                    index=wave,
                )
            )
            cell = src
            wave -= 1
        elif cause == "credit":
            # Backpressure: the binding event was a *successor* starting
            # the wave that freed a channel slot (credits return with
            # zero delay, so the interval is degenerate — the step
            # records the causal hop, not elapsed time).
            src = e.data.get("src")
            src_wave = e.data.get("src_wave")
            if not isinstance(src_wave, int):
                raise ValueError(
                    f"credit-caused fire event for cell {cell!r} wave "
                    f"{wave} lacks src_wave"
                )
            src_e = records.get((src, src_wave))
            if src_e is None:
                raise ValueError(
                    f"trace is missing the fire event for cell {src!r} "
                    f"wave {src_wave} (credit cause of {cell!r} wave {wave})"
                )
            steps.append(
                PathStep(
                    "credit",
                    cell,
                    float(src_e.data.get("start", src_e.t)),
                    start,
                    src=src,
                    index=wave,
                )
            )
            cell, wave = src, src_wave
        elif cause == "init":
            break
        else:
            wave -= 1
    steps.reverse()
    return CriticalPath("selftimed", steps, terminal_finish, reported)


def _from_clocked_trace(
    fires: List[TraceEvent], reported: Optional[float]
) -> CriticalPath:
    # Rebuild per-cell tick histories; stream order is the scalar event
    # order (time, tick, cell position), so "first event achieving the
    # max" reproduces the scalar tie-break.
    ticks: Dict[CellId, Dict[int, float]] = {}
    best: Optional[Tuple[CellId, int]] = None
    best_t = 0.0
    for e in fires:
        tick = e.data.get("tick")
        if not isinstance(tick, int):
            raise ValueError(f"tick/fire event without integer tick: {e!r}")
        ticks.setdefault(e.cell, {})[tick] = e.t
        if e.t > best_t:
            best_t = e.t
            best = (e.cell, tick)
    if best is None:
        return CriticalPath("clocked", [], 0.0, reported)
    cell, k_star = best
    history = ticks[cell]
    steps: List[PathStep] = []
    if 0 in history:
        steps.append(PathStep("clock_offset", cell, 0.0, history[0], index=0))
    for k in range(1, k_star + 1):
        if k - 1 in history and k in history:
            steps.append(
                PathStep("clock_tick", cell, history[k - 1], history[k], index=k)
            )
    return CriticalPath("clocked", steps, best_t, reported)


def critical_path_from_trace(events: Iterable[TraceEvent]) -> CriticalPath:
    """Reconstruct the critical path from a recorded trace.

    Dispatches on what the trace contains: causal ``dataflow/fire``
    events (self-timed engine runs) or ``tick/fire`` events (clocked
    runs).  The final ``dataflow/run`` / ``clocked/run`` summary event,
    when present, supplies the engine-reported makespan for the
    :attr:`CriticalPath.exact` cross-check.  Raises :class:`ValueError`
    for traces with no causal firing events (e.g. span-only traces).
    """
    dataflow_fires: List[TraceEvent] = []
    tick_fires: List[TraceEvent] = []
    reported_selftimed: Optional[float] = None
    reported_clocked: Optional[float] = None
    for e in events:
        if e.cat == "dataflow" and e.kind == "fire":
            dataflow_fires.append(e)
        elif e.cat == "tick" and e.kind == "fire":
            tick_fires.append(e)
        elif e.cat == "dataflow" and e.kind == "run":
            makespan = e.data.get("makespan")
            if isinstance(makespan, (int, float)):
                reported_selftimed = float(makespan)
        elif e.cat == "clocked" and e.kind == "run":
            makespan = e.data.get("makespan")
            if isinstance(makespan, (int, float)):
                reported_clocked = float(makespan)
    if dataflow_fires:
        return _from_dataflow_trace(dataflow_fires, reported_selftimed)
    if tick_fires:
        return _from_clocked_trace(tick_fires, reported_clocked)
    raise ValueError(
        "trace contains no causal firing events "
        "(expected dataflow/fire or tick/fire)"
    )
