"""Render a recorded trace as a self-contained report.

``python -m repro dashboard TRACE [--html FILE]`` funnels through
:func:`build_dashboard`: one pass over a JSONL trace produces

* the **span waterfall** — the reassembled span forest with per-span
  wall time, nested and (for multi-worker Monte-Carlo traces) grouped
  so each worker's pickle/compile/run phases line up side by side;
* **phase totals** — wall seconds aggregated per span name;
* **worker utilization** — per worker, busy wall time over the trace's
  wall-clock window;
* the PR-1 **replay views** — event counts, the skew-over-time
  histogram, and the violation timeline — so one artifact answers both
  "what happened" and "where did the time go".

:func:`render_dashboard_text` prints it to a terminal;
:func:`render_dashboard_html` emits a single HTML file with no external
assets (inline CSS only — it must render from a file:// URL in CI).
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.replay import TraceSummary, summarize_trace
from repro.obs.spans import Span, assemble_spans, iter_spans
from repro.obs.trace import TraceEvent

__all__ = [
    "Dashboard",
    "WorkerRow",
    "build_dashboard",
    "render_dashboard",
    "render_dashboard_html",
    "render_dashboard_text",
    "write_dashboard_html",
]


@dataclass
class WorkerRow:
    """One worker's share of the trace's wall-clock window."""

    worker: str
    spans: int
    busy_s: float
    utilization: float  # busy_s / window_s, 0 when the window is empty


@dataclass
class Dashboard:
    """Everything the dashboard renders, precomputed."""

    summary: TraceSummary
    roots: List[Span] = field(default_factory=list)
    #: (name, calls, total wall seconds), sorted by descending total.
    phase_rows: List[Tuple[str, int, float]] = field(default_factory=list)
    workers: List[WorkerRow] = field(default_factory=list)
    wall_window_s: float = 0.0


def _wall_bounds(spans: Sequence[Span]) -> Tuple[float, float]:
    starts = [s.wall_t0 for s in spans if s.wall_t0 > 0.0]
    ends = [
        s.wall_t0 + s.wall_s
        for s in spans
        if s.wall_t0 > 0.0 and s.wall_s is not None
    ]
    if not starts:
        return 0.0, 0.0
    return min(starts), max(ends) if ends else max(starts)


def build_dashboard(events: List[TraceEvent]) -> Dashboard:
    """One pass over a trace: replay summary plus span analytics."""
    summary = summarize_trace(events)
    roots = assemble_spans(events)
    spans = list(iter_spans(roots))
    phases: Dict[str, List[float]] = {}
    per_worker: Dict[str, List[Span]] = {}
    for s in spans:
        row = phases.setdefault(s.name, [0, 0.0])
        row[0] += 1
        row[1] += s.wall_s or 0.0
        per_worker.setdefault(s.worker, []).append(s)
    phase_rows = sorted(
        ((name, int(n), total) for name, (n, total) in phases.items()),
        key=lambda r: (-r[2], r[0]),
    )
    t0, t1 = _wall_bounds(spans)
    window = max(0.0, t1 - t0)
    workers: List[WorkerRow] = []
    for worker in sorted(per_worker):
        # Busy time counts only spans with no parent *in the same worker*
        # (a worker's own nesting must not double-count).
        own = per_worker[worker]
        ids = {s.span_id for s in own}
        busy = sum(
            s.wall_s or 0.0 for s in own if s.parent_id not in ids
        )
        # busy comes from perf_counter deltas, the window from wall-clock
        # (time.time) bounds — two different clocks, so the ratio can
        # stray a hair past 1; clamp, since >100% utilization is noise.
        workers.append(
            WorkerRow(
                worker=worker,
                spans=len(own),
                busy_s=busy,
                utilization=min(1.0, busy / window) if window > 0 else 0.0,
            )
        )
    return Dashboard(
        summary=summary,
        roots=roots,
        phase_rows=phase_rows,
        workers=workers,
        wall_window_s=window,
    )


def _flatten(roots: Sequence[Span]) -> List[Tuple[int, Span]]:
    out: List[Tuple[int, Span]] = []

    def visit(span: Span, depth: int) -> None:
        out.append((depth, span))
        for child in span.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return out


def _span_label(span: Span) -> str:
    extras = []
    if span.worker and span.worker != "main":
        extras.append(span.worker)
    if span.open:
        extras.append("open")
    elif span.status != "ok":
        extras.append(span.status)
    suffix = f" [{', '.join(extras)}]" if extras else ""
    return f"{span.name}{suffix}"


# ----------------------------------------------------------------------
# terminal rendering
# ----------------------------------------------------------------------
def render_dashboard_text(dash: Dashboard, width: int = 72) -> str:
    lines: List[str] = []
    s = dash.summary
    lines.append(f"{s.events} events, t in [{s.t_min:g}, {s.t_max:g}]")
    lines.append("")
    lines.append("events by category:")
    for cat, kind, n, first, last in s.category_rows:
        lines.append(f"  {cat}/{kind:<24} {n:>7}  [{first:g}, {last:g}]")
    if dash.roots:
        lines.append("")
        lines.append("span waterfall (wall time):")
        flat = _flatten(dash.roots)
        t0, _t1 = _wall_bounds([sp for _d, sp in flat])
        scale = dash.wall_window_s or 1.0
        bar_w = max(10, width - 46)
        for depth, span in flat:
            wall = span.wall_s or 0.0
            label = ("  " * depth + _span_label(span))[:40]
            if span.wall_t0 > 0.0 and dash.wall_window_s > 0:
                lead = int(bar_w * (span.wall_t0 - t0) / scale)
                fill = max(1, int(bar_w * wall / scale))
            else:
                lead, fill = 0, 1
            bar = " " * min(lead, bar_w - 1) + "#" * min(fill, bar_w)
            lines.append(f"  {label:<40} {wall:>9.4f}s |{bar[:bar_w]}")
        lines.append("")
        lines.append("phase totals:")
        for name, n, total in dash.phase_rows:
            lines.append(f"  {name:<40} x{n:<5} {total:>9.4f}s")
    if dash.workers:
        lines.append("")
        lines.append("worker utilization:")
        for w in dash.workers:
            lines.append(
                f"  {w.worker:<12} spans={w.spans:<5} busy={w.busy_s:.4f}s"
                f"  util={w.utilization:6.1%}"
            )
    if s.skew_histogram:
        lines.append("")
        lines.append(
            f"skew histogram ({s.skew_samples} samples, max {s.max_skew:g}):"
        )
        for label, count in s.skew_histogram:
            lines.append(f"  {label:<16} {count}")
    lines.append("")
    if s.violation_timeline:
        lines.append("violation timeline (tick: stale/race):")
        for tick, stale, race in s.violation_timeline:
            lines.append(f"  {tick:>6}: {stale}/{race}")
    else:
        lines.append("violation timeline: the run was clean")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { padding: 0.25rem 0.75rem; border-bottom: 1px solid #ddd;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eee; }
.lane { position: relative; height: 1.15rem; background: #eef;
        min-width: 24rem; }
.bar { position: absolute; top: 15%; height: 70%; background: #4a7abc;
       border-radius: 2px; min-width: 2px; }
.bar.err { background: #c0504d; }
.name { white-space: pre; }
.util { display: inline-block; height: 0.7rem; background: #6aa84f; }
"""


def _html_rows(cells_list: List[List[str]]) -> str:
    return "\n".join(
        "<tr>" + "".join(f"<td>{c}</td>" for c in cells) + "</tr>"
        for cells in cells_list
    )


def render_dashboard_html(
    dash: Dashboard, title: str = "repro trace dashboard"
) -> str:
    """A single self-contained HTML document (inline CSS, no scripts)."""
    esc = _html.escape
    s = dash.summary
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f"<p>{s.events} events, t in [{s.t_min:g}, {s.t_max:g}], "
        f"wall window {dash.wall_window_s:.4f}s</p>",
    ]

    parts.append("<h2>Events by category</h2>")
    parts.append(
        "<table><tr><th>cat/kind</th><th>count</th><th>first t</th>"
        "<th>last t</th></tr>"
    )
    parts.append(
        _html_rows(
            [
                [esc(f"{cat}/{kind}"), str(n), f"{first:g}", f"{last:g}"]
                for cat, kind, n, first, last in s.category_rows
            ]
        )
    )
    parts.append("</table>")

    flat = _flatten(dash.roots)
    if flat:
        parts.append("<h2>Span waterfall</h2>")
        t0, _t1 = _wall_bounds([sp for _d, sp in flat])
        scale = dash.wall_window_s or 1.0
        parts.append(
            "<table><tr><th>span</th><th>wall s</th><th>timeline</th></tr>"
        )
        rows = []
        for depth, span in flat:
            wall = span.wall_s or 0.0
            if span.wall_t0 > 0.0 and dash.wall_window_s > 0:
                left = 100.0 * (span.wall_t0 - t0) / scale
                width = max(0.5, 100.0 * wall / scale)
            else:
                left, width = 0.0, 0.5
            cls = "bar err" if span.status == "error" else "bar"
            bar = (
                f'<div class="lane"><div class="{cls}" '
                f'style="left:{left:.2f}%;width:{min(width, 100.0 - left):.2f}%">'
                "</div></div>"
            )
            rows.append(
                [
                    f'<span class="name">{esc("  " * depth + _span_label(span))}</span>',
                    f"{wall:.4f}",
                    bar,
                ]
            )
        parts.append(_html_rows(rows))
        parts.append("</table>")

        parts.append("<h2>Phase totals</h2>")
        parts.append(
            "<table><tr><th>phase</th><th>calls</th><th>total wall s</th></tr>"
        )
        parts.append(
            _html_rows(
                [
                    [esc(name), str(n), f"{total:.4f}"]
                    for name, n, total in dash.phase_rows
                ]
            )
        )
        parts.append("</table>")

    if dash.workers:
        parts.append("<h2>Worker utilization</h2>")
        parts.append(
            "<table><tr><th>worker</th><th>spans</th><th>busy s</th>"
            "<th>utilization</th></tr>"
        )
        rows = []
        for w in dash.workers:
            pct = max(0.0, min(1.0, w.utilization))
            rows.append(
                [
                    esc(w.worker),
                    str(w.spans),
                    f"{w.busy_s:.4f}",
                    f'<span class="util" style="width:{6.0 * pct:.2f}rem">'
                    f"</span> {w.utilization:.1%}",
                ]
            )
        parts.append(_html_rows(rows))
        parts.append("</table>")

    if s.skew_histogram:
        parts.append(
            f"<h2>Skew over time ({s.skew_samples} samples, "
            f"max {s.max_skew:g})</h2>"
        )
        parts.append("<table><tr><th>bucket</th><th>count</th></tr>")
        parts.append(
            _html_rows([[esc(lbl), str(n)] for lbl, n in s.skew_histogram])
        )
        parts.append("</table>")

    parts.append("<h2>Violation timeline</h2>")
    if s.violation_timeline:
        parts.append(
            "<table><tr><th>tick</th><th>stale</th><th>race</th></tr>"
        )
        parts.append(
            _html_rows(
                [
                    [str(tick), str(stale), str(race)]
                    for tick, stale, race in s.violation_timeline
                ]
            )
        )
        parts.append("</table>")
    else:
        parts.append("<p>the run was clean</p>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard_html(
    dash: Dashboard, path: str, title: str = "repro trace dashboard"
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_dashboard_html(dash, title))


def render_dashboard(events: List[TraceEvent]) -> str:
    """Convenience: build + render the terminal report in one call."""
    return render_dashboard_text(build_dashboard(events))
