"""Unit tests for the design-rule conformance pass (repro.sta.drc)."""

import pytest

from repro.core.models import DifferenceModel
from repro.geometry.layout import Wire
from repro.geometry.point import Point
from repro.sta.design import design_for_workload
from repro.sta.drc import (
    STATUS_FAIL,
    STATUS_PASS,
    STATUS_SKIP,
    STATUS_WARN,
    drc_counts,
    drc_failures,
    run_drc,
)


@pytest.fixture()
def design():
    return design_for_workload("fir", size=5, seed=2)


def rules_by_id(results):
    return {r.rule: r for r in results}


def test_all_eleven_rules_reported(design):
    results = run_drc(design)
    assert [r.rule for r in results] == [f"A{i}" for i in range(1, 12)]
    assert all(r.status in (STATUS_PASS, STATUS_FAIL, STATUS_WARN, STATUS_SKIP) for r in results)


def test_clean_design_has_no_failures(design):
    results = run_drc(design)
    assert not drc_failures(results)
    counts = drc_counts(results)
    assert counts[STATUS_FAIL] == 0
    assert sum(counts.values()) == 11


def test_a3_skips_without_wires_and_checks_with(design):
    results = rules_by_id(run_drc(design))
    assert results["A3"].status == STATUS_SKIP

    cells = design.array.comm.nodes()
    design.array.layout.route_straight(cells[0], cells[1])
    assert rules_by_id(run_drc(design))["A3"].status == STATUS_PASS

    p0 = design.array.layout[cells[0]]
    diagonal = Wire(cells[0], cells[1], (p0, Point(p0.x + 3.0, p0.y + 4.0)))
    design.array.layout.add_wire(diagonal)
    a3 = rules_by_id(run_drc(design))["A3"]
    assert a3.status == STATUS_FAIL
    assert "non-rectilinear" in a3.detail


def test_a5_fails_below_feasible_period():
    d = design_for_workload("matmul", size=3, seed=5)
    tight = d.with_period(d.period * 0.01)
    a5 = rules_by_id(run_drc(tight))["A5"]
    assert a5.status == STATUS_FAIL
    assert "stale" in a5.detail


def test_a9_hard_fails_only_for_difference_model(design):
    # The serpentine tree is not equidistant; under the difference model
    # (which needs d = 0) that's a failure, otherwise only a warning.
    assert rules_by_id(run_drc(design))["A9"].status == STATUS_WARN
    diff = design_for_workload("fir", size=5, seed=2, model=DifferenceModel(lambda d: d))
    assert rules_by_id(run_drc(diff))["A9"].status == STATUS_FAIL


def test_a10_skip_vs_checked(design):
    assert rules_by_id(run_drc(design))["A10"].status == STATUS_SKIP
    budgeted = design_for_workload("fir", size=5, seed=2, s_budget=1e9)
    assert rules_by_id(run_drc(budgeted))["A10"].status == STATUS_PASS
    broke = design_for_workload("fir", size=5, seed=2, s_budget=1e-9)
    assert rules_by_id(run_drc(broke))["A10"].status == STATUS_FAIL


def test_a11_fails_on_racy_schedule():
    d = design_for_workload("matvec", size=3, seed=7, pad_races=False, delta=1e-6)
    results = rules_by_id(run_drc(d))
    from repro.sta.slack import analyze_slack

    if analyze_slack(d).race_edges():
        assert results["A11"].status == STATUS_FAIL
        assert "race" in results["A11"].detail
    else:  # pragma: no cover - generator drift
        pytest.skip("schedule happened to be race-free at this seed")


def test_a7_a8_skip_without_buffered_tree(design):
    design.buffered = None
    results = rules_by_id(run_drc(design))
    assert results["A7"].status == STATUS_SKIP
    assert results["A8"].status == STATUS_SKIP
