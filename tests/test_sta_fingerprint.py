"""Regression tests: STAAnalyzer's fingerprint sees every mutable input.

The seed bug being pinned: the fingerprint captured the padding map by
reference-ish snapshot but missed other in-place mutations (``delta``,
a clock-tree edge retune, an ECO wire override), so the analyzer kept
serving a stale report after the design changed under it.  Each test
mutates one input in place and requires a fresh, *different* verdictable
quantity — no stale cache hits.
"""

from repro.sta.analyzer import STAAnalyzer
from repro.sta.design import design_for_workload


def make_analyzer():
    design = design_for_workload("fir", size=5, scheme="serpentine", seed=0)
    return design, STAAnalyzer(design)


def test_padding_mutation_invalidates():
    design, analyzer = make_analyzer()
    before = analyzer.slack()
    edge = design.edges()[0]
    design.edge_padding[edge] = design.edge_padding.get(edge, 0.0) + 0.7
    after = analyzer.slack()
    assert after is not before
    i = design.edges().index(edge)
    assert after.lag[i] != before.lag[i]


def test_delta_mutation_invalidates():
    # The seed failure: delta is read by every slack row but was only in
    # the fingerprint as part of the analyzer's construction-time state;
    # an in-place `design.delta = x` kept serving the old report.
    design, analyzer = make_analyzer()
    before = analyzer.slack()
    design.delta = design.delta + 0.5
    after = analyzer.slack()
    assert after is not before
    assert abs((after.lag[0] - before.lag[0]) - 0.5) < 1e-12


def test_wire_override_mutation_invalidates():
    design, analyzer = make_analyzer()
    before = analyzer.slack()
    edge = design.edges()[0]
    design.wire_overrides[edge] = 25.0
    after = analyzer.slack()
    assert after is not before
    i = design.edges().index(edge)
    assert after.lag[i] > before.lag[i]


def test_tree_edge_retune_invalidates():
    design, analyzer = make_analyzer()
    before = analyzer.slack()
    leaf = design.tree.leaves()[0]
    design.tree.set_edge_length(leaf, design.tree.edge_length(leaf) + 2.0)
    after = analyzer.slack()
    assert after is not before
    assert after.sigma_ub.tobytes() != before.sigma_ub.tobytes()


def test_unchanged_design_hits_cache():
    _, analyzer = make_analyzer()
    first = analyzer.slack()
    assert analyzer.slack() is first
    assert analyzer.report().to_dict()["counts"] == analyzer.report().to_dict()["counts"]
