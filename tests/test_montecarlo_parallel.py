"""Determinism of the parallel Monte-Carlo backend.

``workers=N`` must be a pure wall-clock optimization: summaries are
required to be *bit-identical* to the serial path (same values in the
same seed order feeding the same summarization), for any worker count,
for both pool flavours, with tracer events intact.
"""

import pytest

from repro.analysis.montecarlo import (
    MonteCarloSummary,
    MonteCarloTelemetry,
    _seed_chunks,
    run_trials,
    run_trials_traced,
    summarize,
)
from repro.obs.spans import assemble_spans
from repro.obs.trace import RecordingTracer


def _trial(seed: int) -> float:
    # Deterministic, seed-sensitive, cheap.
    return float((seed * 2654435761) % 1009) / 7.0


class TestParallelDeterminism:
    def test_workers_4_equals_serial_exactly(self):
        serial = run_trials(_trial, 25, base_seed=11)
        parallel = run_trials(_trial, 25, base_seed=11, workers=4)
        assert serial == parallel  # frozen dataclass: field-wise bit equality

    @pytest.mark.parametrize("workers", [2, 3, 5, 8, 25, 40])
    def test_any_worker_count_is_bit_identical(self, workers):
        serial = run_trials(_trial, 25, base_seed=0)
        parallel = run_trials(_trial, 25, base_seed=0, workers=workers)
        assert serial == parallel

    def test_process_pool_matches_serial(self):
        serial = run_trials(_trial, 8, base_seed=3)
        parallel = run_trials(_trial, 8, base_seed=3, workers=2, executor="process")
        assert serial == parallel

    def test_workers_1_takes_serial_path(self):
        assert run_trials(_trial, 6) == run_trials(_trial, 6, workers=1)


class TestSeedPartitioning:
    def test_chunks_cover_range_in_order(self):
        for n, workers in [(25, 4), (8, 8), (7, 3), (2, 16), (100, 7)]:
            chunks = _seed_chunks(5, n, workers)
            seeds = [
                first + i for first, count in chunks for i in range(count)
            ]
            assert seeds == list(range(5, 5 + n))

    def test_partition_is_schedule_independent(self):
        assert _seed_chunks(0, 10, 3) == _seed_chunks(0, 10, 3)


class TestTracing:
    def test_parallel_run_emits_trial_and_summary_events(self):
        tracer = RecordingTracer()
        summary = run_trials(_trial, 9, base_seed=2, workers=3, tracer=tracer)
        trials = [e for e in tracer.events if e.kind == "trial"]
        assert len(trials) == 9
        assert [e.data["seed"] for e in trials] == list(range(2, 11))
        assert [e.data["value"] for e in trials] == [_trial(2 + i) for i in range(9)]
        (final,) = [e for e in tracer.events if e.kind == "summary"]
        assert final.data["mean"] == summary.mean

    def test_parallel_trace_values_match_serial_trace(self):
        serial_tracer, parallel_tracer = RecordingTracer(), RecordingTracer()
        run_trials(_trial, 10, tracer=serial_tracer)
        run_trials(_trial, 10, workers=4, tracer=parallel_tracer)
        extract = lambda tr: [
            (e.t, e.data["seed"], e.data["value"])
            for e in tr.events
            if e.kind == "trial"
        ]
        assert extract(serial_tracer) == extract(parallel_tracer)


class TestValidationAndSummarize:
    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_trial, 4, workers=0)
        with pytest.raises(ValueError):
            run_trials(_trial, 4, workers=-2)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_trial, 4, workers=2, executor="fiber")

    def test_run_trials_delegates_to_summarize(self):
        values = [_trial(s) for s in range(7, 19)]
        assert run_trials(_trial, 12, base_seed=7) == summarize(values)

    def test_summarize_still_validates(self):
        with pytest.raises(ValueError):
            summarize([1.0])

    def test_summary_shape(self):
        summary = run_trials(_trial, 5, workers=2)
        assert isinstance(summary, MonteCarloSummary)
        assert summary.trials == 5
        assert summary.ci_low <= summary.mean <= summary.ci_high


class TestTracedRuns:
    def test_traced_summary_is_bit_identical_to_untraced(self):
        plain = run_trials(_trial, 16, base_seed=4, workers=3)
        traced, _telemetry = run_trials_traced(
            _trial, 16, base_seed=4, workers=3, tracer=RecordingTracer()
        )
        assert plain == traced

    def test_traced_process_pool_matches_serial(self):
        plain = run_trials(_trial, 8, base_seed=1)
        traced, _telemetry = run_trials_traced(
            _trial, 8, base_seed=1, workers=2, executor="process",
            tracer=RecordingTracer(),
        )
        assert plain == traced

    def test_multi_worker_trace_is_one_span_forest(self):
        tracer = RecordingTracer()
        run_trials_traced(_trial, 12, base_seed=0, workers=3, tracer=tracer)
        roots = assemble_spans(tracer.events)
        assert len(roots) == 1  # one coherent trace, not per-worker shards
        root = roots[0]
        assert root.name == "montecarlo.run_trials"
        child_names = [c.name for c in root.children]
        assert "montecarlo.map" in child_names
        assert "montecarlo.reduce" in child_names
        chunks = [
            s for s in root.walk() if s.name == "montecarlo.chunk"
        ]
        assert {c.worker for c in chunks} == {"w0", "w1", "w2"}
        trials = [s for s in root.walk() if s.name == "montecarlo.trial"]
        assert len(trials) == 12
        assert all(s.wall_s is not None for s in root.walk())  # no open spans

    def test_trial_events_stay_in_seed_order(self):
        tracer = RecordingTracer()
        summary, _ = run_trials_traced(
            _trial, 9, base_seed=2, workers=3, tracer=tracer
        )
        trials = [e for e in tracer.events if e.kind == "trial"]
        assert [e.data["seed"] for e in trials] == list(range(2, 11))
        (final,) = [e for e in tracer.events if e.kind == "summary"]
        assert final.data["mean"] == summary.mean

    def test_telemetry_chunk_accounting(self):
        _, telemetry = run_trials_traced(
            _trial, 10, base_seed=0, workers=4, tracer=RecordingTracer()
        )
        assert isinstance(telemetry, MonteCarloTelemetry)
        assert telemetry.workers == 4
        assert len(telemetry.chunks) == 4
        assert sum(c.trials for c in telemetry.chunks) == 10
        assert all(c.run_s >= 0.0 for c in telemetry.chunks)
        assert telemetry.run_s >= 0.0
        assert telemetry.wall_s > 0.0

    def test_untraced_call_still_returns_telemetry(self):
        summary, telemetry = run_trials_traced(_trial, 6, workers=2)
        assert summary == run_trials(_trial, 6, workers=2)
        assert len(telemetry.chunks) == 2

    def test_traced_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_trials_traced(_trial, 1)
        with pytest.raises(ValueError):
            run_trials_traced(_trial, 4, workers=0)


class TestPickleCostAttribution:
    """Regression: the coordinator's one-time trial pickle used to be
    smeared evenly across chunk telemetry (``pickle_s / len(chunks)``),
    which misattributed a fixed coordinator cost as per-worker work."""

    def test_process_pool_records_pickle_once_not_per_chunk(self):
        _, telemetry = run_trials_traced(
            _trial, 12, base_seed=0, workers=3, executor="process"
        )
        assert telemetry.pickle_once_s > 0.0
        assert all(c.pickle_s == 0.0 for c in telemetry.chunks)

    def test_aggregate_property_is_once_plus_chunks(self):
        _, telemetry = run_trials_traced(
            _trial, 12, base_seed=0, workers=3, executor="process"
        )
        assert telemetry.pickle_s == telemetry.pickle_once_s + sum(
            c.pickle_s for c in telemetry.chunks
        )
        assert telemetry.pickle_s == telemetry.pickle_once_s

    def test_thread_pool_pays_no_pickle(self):
        _, telemetry = run_trials_traced(
            _trial, 8, base_seed=0, workers=2, executor="thread"
        )
        assert telemetry.pickle_once_s == 0.0
        assert telemetry.pickle_s == 0.0

    def test_serial_path_pays_no_pickle(self):
        _, telemetry = run_trials_traced(_trial, 4, base_seed=0)
        assert telemetry.pickle_once_s == 0.0
        assert telemetry.pickle_s == 0.0
