"""Unit tests for clock period accounting (A5/A6/A7)."""

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.core.models import SummationModel
from repro.core.parameters import (
    ClockParameters,
    clock_period,
    equipotential_tau,
    pipelined_tau,
    scheme_parameters,
)
from repro.delay.wire import ElmoreWireModel


class TestClockParameters:
    def test_period_is_sum(self):
        assert ClockParameters(1.0, 2.0, 3.0).period == 6.0

    def test_exact_form_same_asymptotics(self):
        p = ClockParameters(sigma=5.0, delta=1.0, tau=2.0)
        assert p.period_exact_form == max(2.0, 11.0)

    def test_frequency(self):
        assert ClockParameters(1.0, 1.0, 2.0).frequency == 0.25

    def test_zero_period_has_no_frequency(self):
        with pytest.raises(ValueError):
            ClockParameters(0, 0, 0).frequency

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ClockParameters(-1, 0, 0)

    def test_clock_period_helper(self):
        assert clock_period(1, 2, 3) == 6


class TestEquipotentialTau:
    def test_alpha_times_p(self):
        array = linear_array(16)
        tree = spine_clock(array)
        assert equipotential_tau(tree, alpha=2.0) == pytest.approx(2.0 * 15.0)

    def test_grows_with_size(self):
        small = equipotential_tau(spine_clock(linear_array(16)))
        large = equipotential_tau(spine_clock(linear_array(64)))
        assert large > 3 * small

    def test_elmore_grows_quadratically(self):
        model = ElmoreWireModel(r=1.0, c=1.0)
        t32 = equipotential_tau(spine_clock(linear_array(33)), wire_model=model)
        t64 = equipotential_tau(spine_clock(linear_array(65)), wire_model=model)
        assert t64 / t32 == pytest.approx(4.0, rel=0.05)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            equipotential_tau(spine_clock(linear_array(4)), alpha=0)


class TestPipelinedTau:
    def test_constant_in_size(self):
        taus = []
        for n in (16, 256):
            buffered = BufferedClockTree(spine_clock(linear_array(n)))
            taus.append(pipelined_tau(buffered))
        assert taus[0] == pytest.approx(taus[1], rel=0.2)

    def test_equipotential_dwarfs_pipelined_at_scale(self):
        array = linear_array(512)
        tree = spine_clock(array)
        buffered = BufferedClockTree(tree)
        assert equipotential_tau(tree) > 100 * pipelined_tau(buffered)


class TestSchemeParameters:
    def test_assembles_sigma_from_model(self):
        array = linear_array(32)
        tree = spine_clock(array)
        params = scheme_parameters(
            tree, array.communicating_pairs(), SummationModel(m=1.0, eps=0.1),
            delta=1.0, tau=2.0,
        )
        assert params.sigma == pytest.approx(1.1)
        assert params.period == pytest.approx(4.1)

    def test_htree_mesh_period_size_independent(self):
        from repro.core.models import DifferenceModel

        periods = []
        for n in (4, 8, 16):
            array = mesh(n, n)
            tree = htree_for_array(array)
            params = scheme_parameters(
                tree, array.communicating_pairs(), DifferenceModel(), delta=1.0, tau=1.0
            )
            periods.append(params.period)
        assert max(periods) == min(periods)
