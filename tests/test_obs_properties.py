"""Property-based tests (hypothesis) for the observability layer.

Two families of invariants:

* **span forests** — serializing span events through the JSONL encoding
  and reassembling must reproduce the forest exactly, and reassembly
  must not depend on event arrival order (the multi-worker merge in
  ``run_trials_traced`` interleaves chunk streams arbitrarily);
* **critical paths** — the reconstructed dependency chain must end at
  the simulator-reported makespan bit-for-bit on randomized designs,
  for the clocked engine (scalar and compiled) and the self-timed
  recurrence.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.spans import SpanTracer, assemble_spans, iter_spans
from repro.obs.trace import RecordingTracer, TraceEvent
from repro.sim.dataflow import SelfTimedProgramSimulator, hashed_service
from repro.sta.design import random_design


# ----------------------------------------------------------------------
# random span forests
# ----------------------------------------------------------------------
def _random_forest_events(seed: int, n_spans: int) -> list:
    """Emit a random (but deterministic in ``seed``) nested span forest
    across several workers and return the flat event list."""
    rng = random.Random(seed)
    tracer = RecordingTracer()
    tracers = [
        SpanTracer(tracer, worker=f"w{w}") for w in range(rng.randint(1, 3))
    ]

    def emit(spans: SpanTracer, budget: int, depth: int) -> int:
        while budget > 0:
            budget -= 1
            with spans.span(f"s{rng.randint(0, 5)}", t=rng.random() * 10):
                if depth < 3 and budget > 0 and rng.random() < 0.5:
                    budget = emit(spans, budget, depth + 1)
        return budget

    remaining = n_spans
    for spans in tracers:
        take = rng.randint(0, remaining)
        emit(spans, take, 0)
        remaining -= take
    return list(tracer.events)


def _forest_shape(roots):
    """A structural fingerprint: identity, interval, and child order."""
    def shape(span):
        return (
            span.span_id, span.parent_id, span.name, span.worker,
            span.t_start, span.t_end, span.wall_s, span.status,
            tuple(shape(c) for c in span.children),
        )

    return tuple(shape(r) for r in roots)


class TestSpanForestProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 12))
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_identity(self, seed, n):
        events = _random_forest_events(seed, n)
        decoded = [
            TraceEvent.from_json_obj(e.to_json_obj()) for e in events
        ]
        assert _forest_shape(assemble_spans(decoded)) == _forest_shape(
            assemble_spans(events)
        )

    @given(seed=st.integers(0, 10_000), n=st.integers(0, 12),
           shuffle_seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_assembly_is_arrival_order_independent(self, seed, n, shuffle_seed):
        events = _random_forest_events(seed, n)
        shuffled = list(events)
        random.Random(shuffle_seed).shuffle(shuffled)
        assert _forest_shape(assemble_spans(shuffled)) == _forest_shape(
            assemble_spans(events)
        )

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_every_span_is_reachable_exactly_once(self, seed, n):
        events = _random_forest_events(seed, n)
        roots = assemble_spans(events)
        starts = [e for e in events if e.kind == "start"]
        walked = [s.span_id for s in iter_spans(roots)]
        assert sorted(walked) == sorted(e.data["id"] for e in starts)
        assert len(set(walked)) == len(walked)


# ----------------------------------------------------------------------
# critical path == makespan over randomized designs
# ----------------------------------------------------------------------
class TestCriticalPathProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_clocked_path_equals_both_engine_makespans(self, seed):
        design = random_design(seed)
        sim = design.simulator()
        cp = sim.critical_path()
        assert cp.makespan == sim.run_scalar().makespan  # bitwise
        assert cp.makespan == sim.compiled().run().makespan

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_selftimed_path_equals_recurrence_makespan(self, seed):
        design = random_design(seed)
        service = hashed_service(1.0, 3.0, 0.3, seed)
        sim = SelfTimedProgramSimulator(
            design.program, service=service, wire_delay=0.25
        )
        cp = sim.critical_path()
        assert cp.makespan == sim.recurrence_makespan_scalar()  # bitwise
        assert cp.makespan == sim.recurrence_makespan()
