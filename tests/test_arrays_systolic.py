"""Unit tests for the systolic workloads against NumPy ground truth."""

import numpy as np
import pytest

from repro.arrays.systolic import (
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)


class TestFir:
    def test_matches_numpy_convolve(self):
        weights = [1.0, 2.0, -1.0]
        xs = [3.0, 1.0, 4.0, 1.0, 5.0]
        got = build_fir_array(weights, xs).run_lockstep()
        assert got == pytest.approx(list(np.convolve(xs, weights)))

    def test_single_tap(self):
        got = build_fir_array([0.5], [1.0, 2.0, 3.0]).run_lockstep()
        assert got == pytest.approx([0.5, 1.0, 1.5])

    def test_long_filter(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=8).tolist()
        xs = rng.normal(size=20).tolist()
        got = build_fir_array(weights, xs).run_lockstep()
        assert got == pytest.approx(list(np.convolve(xs, weights)))

    def test_impulse_response_recovers_weights(self):
        weights = [2.0, -3.0, 5.0, 7.0]
        got = build_fir_array(weights, [1.0]).run_lockstep()
        assert got == pytest.approx(weights)

    def test_output_length(self):
        got = build_fir_array([1.0, 1.0], [1.0] * 6).run_lockstep()
        assert len(got) == 7

    def test_rejects_empty_taps(self):
        with pytest.raises(ValueError):
            build_fir_array([], [1.0])

    def test_rerun_is_deterministic(self):
        prog = build_fir_array([1.0, 2.0], [1.0, 0.0, 1.0])
        assert prog.run_lockstep() == prog.run_lockstep()


class TestMatVec:
    def test_matches_numpy(self):
        a = [[1, 2], [3, 4], [5, 6]]
        x = [1, -1]
        got = build_matvec_array(a, x).run_lockstep()
        assert got == pytest.approx(list(np.array(a) @ np.array(x)))

    def test_square_random(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 5))
        x = rng.normal(size=5)
        got = build_matvec_array(a.tolist(), x.tolist()).run_lockstep()
        assert got == pytest.approx(list(a @ x))

    def test_single_element(self):
        assert build_matvec_array([[3.0]], [4.0]).run_lockstep() == pytest.approx([12.0])

    def test_wide_matrix_rejected_on_mismatch(self):
        with pytest.raises(ValueError):
            build_matvec_array([[1, 2, 3]], [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_matvec_array([], [1.0])


class TestSorter:
    def test_sorts(self):
        got = build_odd_even_sorter([5, 3, 8, 1, 9, 2]).run_lockstep()
        assert got == [1, 2, 3, 5, 8, 9]

    def test_already_sorted(self):
        got = build_odd_even_sorter([1, 2, 3, 4]).run_lockstep()
        assert got == [1, 2, 3, 4]

    def test_reverse_sorted_worst_case(self):
        values = list(range(9, -1, -1))
        got = build_odd_even_sorter(values).run_lockstep()
        assert got == sorted(values)

    def test_duplicates(self):
        got = build_odd_even_sorter([2, 2, 1, 1, 3]).run_lockstep()
        assert got == [1, 1, 2, 2, 3]

    def test_single_value(self):
        assert build_odd_even_sorter([7]).run_lockstep() == [7]

    def test_random_permutations(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            values = rng.permutation(12).astype(float).tolist()
            got = build_odd_even_sorter(values).run_lockstep()
            assert got == sorted(values)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_odd_even_sorter([])


class TestMeshMatmul:
    def test_matches_numpy_2x2(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        got = build_mesh_matmul(a, b).run_lockstep()
        assert np.allclose(got, np.array(a) @ np.array(b))

    def test_matches_numpy_random(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4))
        got = build_mesh_matmul(a.tolist(), b.tolist()).run_lockstep()
        assert np.allclose(got, a @ b)

    def test_identity(self):
        eye = np.eye(3).tolist()
        b = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        got = build_mesh_matmul(eye, b).run_lockstep()
        assert np.allclose(got, b)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            build_mesh_matmul([[1, 2]], [[1], [2]])

    def test_program_metadata(self):
        prog = build_mesh_matmul([[1.0]], [[2.0]])
        assert prog.cycles >= 3
        assert prog.array.size >= 3  # cell + two hosts
