"""CompiledTimingKernel: the array-only large-N static timing kernel.

Its contract is exact agreement with the per-event scalar oracle —
violation list (contents *and* order), makespan, tick count — for every
edge-block size, plus a loss-free round trip through raw arrays.
"""

import numpy as np
import pytest

from repro.graphs.csr import CSRAdjacency, grid_csr
from repro.sim.compiled import CompiledTimingKernel, TimingResult


def _offsets(n: int, seed: int, period: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.5 * period, n)


def _kernel(rows=5, cols=4, seed=7, period=1.0, lag=0.3) -> CompiledTimingKernel:
    grid = grid_csr(rows, cols)
    return CompiledTimingKernel(
        grid, _offsets(rows * cols, seed, period), period=period, lag=lag
    )


class TestScalarAgreement:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    @pytest.mark.parametrize("shape", [(2, 2), (5, 4), (8, 8)])
    def test_timing_equals_scalar_oracle(self, shape, seed):
        kernel = _kernel(*shape, seed=seed)
        fast = kernel.timing(4)
        slow = kernel.timing_scalar(4)
        assert fast.violations == slow.violations
        assert fast.makespan == slow.makespan
        assert fast.ticks == slow.ticks

    def test_workload_with_violations_has_them(self):
        # Half-period offsets guarantee late latches somewhere.
        kernel = _kernel(6, 6, seed=3)
        result = kernel.timing(4)
        assert result.violations  # the comparison above must not be vacuous
        assert not result.clean

    def test_clean_schedule_is_clean(self):
        grid = grid_csr(4, 4)
        kernel = CompiledTimingKernel(
            grid, np.zeros(16), period=10.0, lag=0.5
        )
        result = kernel.timing(3)
        assert result.clean
        assert result.violations == []
        assert result.makespan == 20.0


class TestBlockedStreaming:
    @pytest.mark.parametrize("block", [1, 3, 7, 16, 1000])
    def test_any_block_size_is_bit_identical(self, block):
        kernel = _kernel(7, 5, seed=11)
        mono = kernel.timing(5)
        streamed = kernel.timing(5, edge_block=block)
        assert streamed.violations == mono.violations
        assert streamed.makespan == mono.makespan
        assert streamed.ticks == mono.ticks

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError):
            _kernel().timing(3, edge_block=0)

    def test_bad_ticks_rejected(self):
        with pytest.raises(ValueError):
            _kernel().timing(0)


class TestConstruction:
    def test_offsets_shape_checked(self):
        with pytest.raises(ValueError):
            CompiledTimingKernel(grid_csr(3, 3), np.zeros(5), period=1.0)

    def test_period_positive(self):
        with pytest.raises(ValueError):
            CompiledTimingKernel(grid_csr(2, 2), np.zeros(4), period=0.0)

    def test_per_edge_lag_shape_checked(self):
        grid = grid_csr(2, 2)
        with pytest.raises(ValueError):
            CompiledTimingKernel(
                grid, np.zeros(4), period=1.0, lag=np.zeros(grid.n_edges + 1)
            )

    def test_per_edge_lag_accepted_and_matches_scalar(self):
        grid = grid_csr(3, 3)
        rng = np.random.default_rng(5)
        lag = rng.uniform(0.0, 0.8, grid.n_edges)
        kernel = CompiledTimingKernel(
            grid, _offsets(9, 5, 1.0), period=1.0, lag=lag
        )
        fast = kernel.timing(4)
        slow = kernel.timing_scalar(4)
        assert fast.violations == slow.violations
        assert fast.makespan == slow.makespan


class TestArenaRoundTrip:
    def test_arrays_round_trip_exactly(self):
        kernel = _kernel(6, 4, seed=9)
        rebuilt = CompiledTimingKernel.from_arrays(kernel.arrays())
        a, b = kernel.timing(4), rebuilt.timing(4)
        assert a.violations == b.violations
        assert a.makespan == b.makespan

    def test_arrays_keys_are_arena_friendly(self):
        arrays = _kernel().arrays()
        assert set(arrays) == {"indptr", "indices", "offsets", "lag", "params"}
        for value in arrays.values():
            assert isinstance(value, np.ndarray)


class TestTimingResult:
    def test_clean_property(self):
        assert TimingResult(violations=[], makespan=1.0, ticks=2).clean
        sentinel = object()
        assert not TimingResult(
            violations=[sentinel], makespan=1.0, ticks=2
        ).clean

    def test_timing_edges_are_int_pairs(self):
        kernel = _kernel(6, 6, seed=3)
        for v in kernel.timing(4).violations:
            src, dst = v.edge
            assert isinstance(src, int) and isinstance(dst, int)


class TestAdjacencyGenerality:
    def test_non_grid_csr_works(self):
        # A tiny DAG-ish adjacency given directly in CSR form.
        adjacency = CSRAdjacency(
            indptr=np.array([0, 0, 1, 3]),
            indices=np.array([0, 0, 1]),
        )
        kernel = CompiledTimingKernel(
            adjacency, np.array([0.0, 0.4, 0.9]), period=1.0, lag=0.2
        )
        fast = kernel.timing(3)
        slow = kernel.timing_scalar(3)
        assert fast.violations == slow.violations
        assert fast.makespan == slow.makespan
