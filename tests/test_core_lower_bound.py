"""Tests for the executable Section V-B lower-bound proof."""

import math

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.builders import kdtree_clock, serpentine_clock
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.core.lower_bound import (
    LowerBoundCertificate,
    lower_bound_value,
    prove_skew_lower_bound,
)


class TestLowerBoundValue:
    def test_linear_in_n(self):
        v8 = lower_bound_value(8, beta=0.1)
        v16 = lower_bound_value(16, beta=0.1)
        v32 = lower_bound_value(32, beta=0.1)
        assert v16 / max(v8, 1e-9) >= 1.5
        assert v32 / v16 == pytest.approx(2.0, rel=0.5)

    def test_scales_with_beta(self):
        assert lower_bound_value(32, 0.2) == pytest.approx(2 * lower_bound_value(32, 0.1))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lower_bound_value(1, 0.1)
        with pytest.raises(ValueError):
            lower_bound_value(8, 0)
        with pytest.raises(ValueError):
            lower_bound_value(8, 0.1, separator_fraction=0.95)


class TestCertificatesOnMeshes:
    @pytest.mark.parametrize("scheme", [htree_for_array, serpentine_clock, kdtree_clock])
    @pytest.mark.parametrize("n", [4, 8])
    def test_proof_executes_and_checks(self, scheme, n):
        array = mesh(n, n)
        tree = scheme(array)
        cert = prove_skew_lower_bound(tree, array, beta=0.1)
        cert.check()  # raises on any violated step
        assert cert.n_cells == n * n
        assert cert.branch in ("circle", "bisection")
        assert cert.sigma >= cert.bound

    def test_sigma_exceeds_tree_independent_floor(self):
        # Any concrete tree's sigma must beat the Omega(n) floor.
        for n in (8, 12, 16):
            array = mesh(n, n)
            floor = lower_bound_value(n, beta=0.1)
            for builder in (htree_for_array, serpentine_clock, kdtree_clock):
                cert = prove_skew_lower_bound(builder(array), array, beta=0.1)
                assert cert.sigma >= floor - 1e-9, (n, builder.__name__)

    def test_sigma_grows_with_n(self):
        sigmas = []
        for n in (4, 8, 16):
            array = mesh(n, n)
            best = min(
                prove_skew_lower_bound(b(array), array, beta=0.1).sigma
                for b in (htree_for_array, serpentine_clock, kdtree_clock)
            )
            sigmas.append(best)
        assert sigmas[1] > 1.4 * sigmas[0]
        assert sigmas[2] > 1.4 * sigmas[1]

    def test_separator_fraction_reported(self):
        array = mesh(6, 6)
        cert = prove_skew_lower_bound(serpentine_clock(array), array, beta=0.1)
        assert 0.5 <= cert.separator_fraction <= 0.75

    def test_radius_is_sigma_over_beta(self):
        array = mesh(6, 6)
        cert = prove_skew_lower_bound(serpentine_clock(array), array, beta=0.2)
        assert cert.radius == pytest.approx(cert.sigma / 0.2)


class TestCertificateValidation:
    def test_check_rejects_fabricated_violation(self):
        cert = LowerBoundCertificate(
            n_cells=16, beta=0.1, sigma=1.0, branch="circle",
            separator_fraction=0.6, radius=10.0, cells_in_circle=10,
            crossing_edges=0, straddle_verified=True, packing_verified=True,
            balance_fraction=0.6, bound=2.0,
        )
        with pytest.raises(AssertionError, match="lower-bound violation"):
            cert.check()

    def test_check_rejects_failed_packing(self):
        cert = LowerBoundCertificate(
            n_cells=16, beta=0.1, sigma=5.0, branch="circle",
            separator_fraction=0.6, radius=1.0, cells_in_circle=100,
            crossing_edges=0, straddle_verified=True, packing_verified=False,
            balance_fraction=0.6, bound=1.0,
        )
        with pytest.raises(AssertionError, match="packing"):
            cert.check()

    def test_check_rejects_failed_straddle(self):
        cert = LowerBoundCertificate(
            n_cells=16, beta=0.1, sigma=5.0, branch="bisection",
            separator_fraction=0.6, radius=1.0, cells_in_circle=1,
            crossing_edges=4, straddle_verified=False, packing_verified=True,
            balance_fraction=0.6, bound=1.0,
        )
        with pytest.raises(AssertionError, match="straddle"):
            cert.check()

    def test_rejects_cell_missing_from_tree(self):
        array = mesh(3, 3)
        tree = spine_clock(linear_array(4))
        with pytest.raises(ValueError, match="not a node of CLK"):
            prove_skew_lower_bound(tree, array, beta=0.1)

    def test_rejects_nonpositive_beta(self):
        array = mesh(3, 3)
        with pytest.raises(ValueError):
            prove_skew_lower_bound(serpentine_clock(array), array, beta=0)


class TestOtherTopologies:
    @pytest.mark.parametrize("n", [6, 8])
    def test_hex_array_certificates(self, n):
        """Hex arrays have denser edges; a larger boundary capacity keeps
        the packing check honest and the proof still executes."""
        from repro.arrays.topologies import hex_array

        array = hex_array(n, n)
        cert = prove_skew_lower_bound(
            serpentine_clock(array), array, beta=0.1, capacity_per_radius=16.0
        )
        cert.check()

    def test_torus_certificates(self):
        from repro.arrays.topologies import torus

        array = torus(8, 8)
        for builder in (serpentine_clock, kdtree_clock):
            cert = prove_skew_lower_bound(
                builder(array), array, beta=0.1, capacity_per_radius=16.0
            )
            cert.check()

    def test_torus_wrap_edges_raise_sigma(self):
        """The torus's wraparound pairs are far apart on any serpentine
        trunk, so its sigma dominates the open mesh's."""
        from repro.arrays.topologies import mesh, torus

        open_mesh = mesh(8, 8)
        wrapped = torus(8, 8)
        sigma_open = prove_skew_lower_bound(
            serpentine_clock(open_mesh), open_mesh, beta=0.1
        ).sigma
        sigma_torus = prove_skew_lower_bound(
            serpentine_clock(wrapped), wrapped, beta=0.1, capacity_per_radius=16.0
        ).sigma
        assert sigma_torus > 2 * sigma_open


class TestContrastWithOneDimensional:
    def test_linear_array_spine_escapes_growth(self):
        """The 1D contrast: the same machinery applied to a spine-clocked
        linear array yields sigma constant in n — no Omega(n) phenomenon."""
        sigmas = []
        for n in (16, 64, 256):
            array = linear_array(n)
            tree = spine_clock(array)
            pairs = array.communicating_pairs()
            sigma = max(0.1 * tree.path_length(a, b) for a, b in pairs)
            sigmas.append(sigma)
        assert max(sigmas) == pytest.approx(min(sigmas))
