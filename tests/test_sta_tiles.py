"""Tile composition tests: stitched analysis == flat analysis, exactly.

The composition is engineered for bit-exact reuse (congruent root
distances and schedule offsets across tiles — see
:mod:`repro.sta.tiles`), so every comparison here is ``==`` on floats,
not approx.
"""

import pytest

from repro.sta.tiles import (
    ArraySummary,
    TileSpec,
    characterize_tile,
    compose_design,
    flat_summary,
    stitched_analysis,
    tile_cache_clear,
    tile_cache_info,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    tile_cache_clear()
    yield
    tile_cache_clear()


def assert_stitched_equals_flat(spec, tiles_rows, tiles_cols, period):
    design = compose_design(spec, tiles_rows, tiles_cols, period)
    flat = flat_summary(design)
    stitched = stitched_analysis(
        spec, tiles_rows, tiles_cols, period, design=design
    )
    assert stitched == flat  # dataclass equality: every float, every count
    return flat


def test_256_cells_4x4_grid_of_4x4_tiles():
    flat = assert_stitched_equals_flat(TileSpec(rows=4, cols=4), 4, 4, 60.0)
    assert flat.edges == 960
    assert flat.counts["edges"] == 960


def test_1024_cells_4x4_grid_of_8x8_tiles():
    assert_stitched_equals_flat(TileSpec(rows=8, cols=8), 4, 4, 140.0)


def test_non_square_grid_and_tile():
    assert_stitched_equals_flat(TileSpec(rows=2, cols=5), 2, 8, 70.0)


def test_single_tile_grid():
    assert_stitched_equals_flat(TileSpec(rows=4, cols=4), 1, 1, 30.0)


def test_many_periods_from_one_characterization():
    spec = TileSpec(rows=4, cols=4)
    for period in (10.0, 33.3, 60.0, 500.0):
        assert_stitched_equals_flat(spec, 4, 4, period)
    # one characterization served every period
    info = tile_cache_info()
    assert info["entries"] == 1
    assert info["misses"] == 1
    assert info["hits"] == 3


def test_cache_hit_returns_identical_characterization():
    spec = TileSpec(rows=4, cols=4)
    first = characterize_tile(spec, 2, 2)
    second = characterize_tile(spec, 2, 2)
    assert second is first
    info = tile_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # a different grid shape is a different trunk -> different cache entry
    third = characterize_tile(spec, 4, 4)
    assert third is not first
    assert tile_cache_info()["entries"] == 2


def test_characterization_row_accounting():
    spec = TileSpec(rows=4, cols=4)
    design = compose_design(spec, 2, 2, 40.0)
    ch = characterize_tile(spec, 2, 2, design=design)
    assert ch.tiles == 4
    assert ch.total_rows == len(design.edges())
    assert ch.total_rows == 4 * ch.internal_rows + ch.boundary_rows
    assert ch.boundary_rows > 0  # abutment seams exist on a 2x2 grid


def test_grid_must_be_power_of_two():
    with pytest.raises(ValueError, match="powers of two"):
        compose_design(TileSpec(rows=4, cols=4), 3, 4, 10.0)


def test_tile_spec_validation():
    with pytest.raises(ValueError):
        TileSpec(rows=0, cols=4)


def test_summary_shape():
    spec = TileSpec(rows=4, cols=4)
    summary = stitched_analysis(spec, 2, 2, 50.0)
    assert isinstance(summary, ArraySummary)
    assert summary.period == 50.0
    assert set(summary.counts) == {
        "edges", "stale", "race", "stale_possible", "race_possible",
        "race_floor",
    }
    assert summary.min_feasible_period_bound >= summary.min_feasible_period_exact
