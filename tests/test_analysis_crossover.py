"""Tests for crossover detection."""

import pytest

from repro.analysis.crossover import Crossover, find_crossover, winning_factor
from repro.arrays.topologies import linear_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.core.parameters import equipotential_tau, pipelined_tau


class TestFindCrossover:
    def test_simple_crossing_interpolated(self):
        xs = [1.0, 2.0, 3.0]
        a = [1.0, 2.0, 3.0]      # growing
        b = [2.5, 2.5, 2.5]      # flat
        cross = find_crossover(xs, a, b)
        assert cross is not None
        assert cross.exact
        assert cross.x == pytest.approx(2.5)

    def test_b_wins_everywhere(self):
        cross = find_crossover([1, 2], [5, 6], [1, 1])
        assert cross is not None
        assert cross.x == 1
        assert not cross.exact

    def test_no_crossover(self):
        assert find_crossover([1, 2, 3], [1, 1, 1], [2, 2, 2]) is None

    def test_touching_then_winning(self):
        xs = [1, 2, 3]
        a = [2.0, 2.0, 2.0]
        b = [3.0, 2.0, 1.0]
        cross = find_crossover(xs, a, b)
        assert cross is not None
        assert cross.x == 2  # tie at sample 1, win at 2 -> reported at tie

    def test_rejects_mismatched_or_unsorted(self):
        with pytest.raises(ValueError):
            find_crossover([1, 2], [1], [1, 2])
        with pytest.raises(ValueError):
            find_crossover([2, 1], [1, 2], [1, 2])
        with pytest.raises(ValueError):
            find_crossover([], [], [])

    def test_winning_factor(self):
        assert winning_factor([10.0, 20.0], [2.0, 4.0]) == 5.0
        with pytest.raises(ValueError):
            winning_factor([1.0], [0.0])


class TestOnRealCurves:
    def test_pipelined_vs_equipotential_crossover(self):
        """The paper's motivating crossover, located concretely."""
        sizes = [2, 4, 8, 16, 32, 64]
        eq, pipe = [], []
        for n in sizes:
            tree = spine_clock(linear_array(n))
            eq.append(equipotential_tau(tree))
            pipe.append(pipelined_tau(BufferedClockTree(tree)))
        cross = find_crossover(sizes, eq, pipe)
        assert cross is not None
        assert 2 <= cross.x <= 8  # a few cells, as the EQ bench shows
        assert winning_factor(eq, pipe) > 20


class TestTieSemantics:
    """Tie handling: a tie is never a win, but a tie run immediately
    before the first strict win is the exact crossing point."""

    def test_tie_then_win_is_exact_with_consistent_index(self):
        xs = [1.0, 2.0, 3.0]
        a = [2.0, 2.0, 2.0]
        b = [3.0, 2.0, 1.0]
        cross = find_crossover(xs, a, b)
        assert cross is not None
        assert cross.x == pytest.approx(2.0)   # the touch point
        assert cross.index == 2                # first sample where B < A
        assert cross.exact                     # the touch locates the crossing

    def test_tie_run_reports_first_touch(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        a = [1.0, 1.0, 1.0, 1.0]
        b = [2.0, 1.0, 1.0, 0.0]
        cross = find_crossover(xs, a, b)
        assert cross is not None
        assert cross.x == pytest.approx(1.0)   # start of the tie run
        assert cross.index == 3
        assert cross.exact

    def test_ties_from_the_first_sample(self):
        cross = find_crossover([0.0, 1.0, 2.0], [1.0, 1.0, 1.0], [1.0, 1.0, 0.0])
        assert cross is not None
        assert cross.x == pytest.approx(0.0)
        assert cross.index == 2
        assert cross.exact

    def test_tie_without_a_win_is_no_crossover(self):
        assert find_crossover([1, 2, 3], [2, 2, 2], [3, 2, 3]) is None
        assert find_crossover([1, 2], [2, 2], [2, 2]) is None

    def test_win_at_first_sample_is_not_exact(self):
        cross = find_crossover([1, 2], [5, 6], [1, 1])
        assert cross is not None
        assert cross.index == 0
        assert not cross.exact
