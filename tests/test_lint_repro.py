"""The repo-invariant AST linter: rule unit tests + the tree-wide gate."""

import textwrap

from tools.lint_repro import SRC_ROOT, lint_source, lint_tree


def lint(code: str, rel: str = "core/example.py"):
    return lint_source(textwrap.dedent(code), rel)


# ----------------------------------------------------------------------
# batch-oracle
# ----------------------------------------------------------------------
def test_batch_without_scalar_oracle_is_flagged():
    violations = lint(
        """
        class Kernel:
            def frob_batch(self, xs):
                return xs
        """
    )
    assert [v.rule for v in violations] == ["batch-oracle"]
    assert "Kernel.frob_batch" in violations[0].message


def test_batch_with_plain_scalar_counterpart_passes():
    assert not lint(
        """
        class Kernel:
            def frob(self, x):
                return x

            def frob_batch(self, xs):
                return [self.frob(x) for x in xs]
        """
    )


def test_batch_with_scalar_suffix_counterpart_passes():
    assert not lint(
        """
        def frob_batch(xs):
            return xs

        def frob_scalar(x):
            return x
        """
    )


def test_module_level_batch_without_oracle_is_flagged():
    violations = lint("def frob_batch(xs):\n    return xs\n")
    assert [v.rule for v in violations] == ["batch-oracle"]


def test_allowlisted_split_oracle_passes():
    assert not lint(
        """
        class ClockTree:
            def path_difference(self, a, b):
                return 0.0

            def path_length(self, a, b):
                return 0.0

            def path_metrics_batch(self, pairs):
                return []
        """
    )


# ----------------------------------------------------------------------
# seeded-random
# ----------------------------------------------------------------------
def test_module_level_random_call_is_flagged():
    violations = lint("import random\nx = random.random()\n")
    assert [v.rule for v in violations] == ["seeded-random"]


def test_owned_random_instance_passes():
    assert not lint(
        """
        import random
        rng = random.Random(7)
        x = rng.random()
        """
    )


def test_unseeded_numpy_random_is_flagged():
    violations = lint("import numpy as np\nx = np.random.rand(4)\n")
    assert [v.rule for v in violations] == ["seeded-random"]


def test_seeded_default_rng_passes():
    assert not lint("import numpy as np\nrng = np.random.default_rng(3)\n")


def test_unseeded_default_rng_is_flagged():
    violations = lint("import numpy as np\nrng = np.random.default_rng()\n")
    assert [v.rule for v in violations] == ["seeded-random"]


# ----------------------------------------------------------------------
# flow-oracle
# ----------------------------------------------------------------------
def test_howard_kernel_without_oracle_is_flagged():
    violations = lint_source(
        "def mcm_howard(fg):\n    return None\n", "sta/flow.py"
    )
    assert [v.rule for v in violations] == ["flow-oracle"]
    assert "mcm_karp" in violations[0].message


def test_howard_kernel_with_karp_oracle_passes():
    assert not lint_source(
        "def mcm_karp(fg):\n    return None\n"
        "def mcm_howard(fg):\n    return None\n",
        "sta/flow.py",
    )


def test_simulate_loop_without_scalar_oracle_is_flagged():
    violations = lint_source(
        "def simulate_steady_state(comm):\n    return None\n", "sta/flow.py"
    )
    assert [v.rule for v in violations] == ["flow-oracle"]


def test_simulate_loop_with_scalar_oracle_passes():
    assert not lint_source(
        "def simulate_steady_state(comm):\n    return None\n"
        "def simulate_steady_state_scalar(comm):\n    return None\n",
        "sta/flow.py",
    )


def test_flow_oracle_rule_scoped_to_sta_package():
    # sim/ has simulate_* entry points with differential checks of their
    # own; the pairing convention is an sta/ contract.
    assert not lint_source(
        "def simulate_selftimed_line(n):\n    return None\n", "sim/selftimed.py"
    )


# ----------------------------------------------------------------------
# simulator-kwargs
# ----------------------------------------------------------------------
SIM_WITHOUT_OBS = """
class ToySimulator:
    def __init__(self, program):
        self.program = program
"""

SIM_WITH_OBS = """
class ToySimulator:
    def __init__(self, program, tracer=None, metrics=None):
        self.program = program
"""


def test_simulator_without_obs_kwargs_is_flagged_in_sim():
    violations = lint_source(SIM_WITHOUT_OBS, "sim/toy.py")
    assert [v.rule for v in violations] == ["simulator-kwargs"]
    assert "tracer/metrics" in violations[0].message


def test_simulator_with_obs_kwargs_passes():
    assert not lint_source(SIM_WITH_OBS, "sim/toy.py")


def test_simulator_rule_scoped_to_sim_package():
    # The same class outside repro/sim is not a public simulator.
    assert not lint_source(SIM_WITHOUT_OBS, "analysis/toy.py")


def test_private_simulator_is_exempt():
    assert not lint_source(
        "class _ScratchSimulator:\n    def __init__(self, p):\n        pass\n",
        "sim/toy.py",
    )


# ----------------------------------------------------------------------
# guarded-trace-event
# ----------------------------------------------------------------------
def test_unguarded_tracer_event_is_flagged():
    violations = lint(
        """
        def run(tracer):
            tracer.event(0.0, "cat", "kind", cell=1)
        """
    )
    assert [v.rule for v in violations] == ["guarded-trace-event"]
    assert "tracer.event" in violations[0].message


def test_guarded_tracer_event_passes():
    assert not lint(
        """
        def run(tracer):
            if tracer.enabled:
                tracer.event(0.0, "cat", "kind", cell=1)
        """
    )


def test_guard_on_attribute_tracer_passes():
    assert not lint(
        """
        class Sim:
            def run(self):
                if self._tracer.enabled:
                    self._tracer.event(0.0, "cat", "kind")
        """
    )


def test_unguarded_attribute_tracer_is_flagged():
    violations = lint(
        """
        class Sim:
            def run(self):
                self._tracer.event(0.0, "cat", "kind")
        """
    )
    assert [v.rule for v in violations] == ["guarded-trace-event"]


def test_else_branch_of_enabled_guard_is_not_covered():
    violations = lint(
        """
        def run(tracer):
            if tracer.enabled:
                pass
            else:
                tracer.event(0.0, "cat", "kind")
        """
    )
    assert [v.rule for v in violations] == ["guarded-trace-event"]


def test_obs_package_is_exempt():
    assert not lint_source(
        "def emit(tracer):\n    tracer.event(0.0, 'c', 'k')\n",
        "obs/spans.py",
    )


def test_non_tracer_event_call_is_ignored():
    # .event() on something not named like a tracer (e.g. a GUI emitter)
    # is out of the rule's scope.
    assert not lint("def f(bus):\n    bus.event(0.0, 'c', 'k')\n")


def test_span_calls_are_exempt():
    # SpanTracer.span checks enabled internally; only raw .event needs
    # a lexical guard.
    assert not lint(
        """
        def run(spans):
            with spans.span("phase"):
                pass
        """
    )


# ----------------------------------------------------------------------
# the actual gate
# ----------------------------------------------------------------------
def test_src_repro_is_lint_clean():
    violations = lint_tree(SRC_ROOT)
    assert not violations, "\n".join(str(v) for v in violations)


def test_gate_actually_sees_the_simulators():
    # Guard against the rule silently matching nothing (e.g. a path-prefix
    # regression): the tree must contain public simulators in repro/sim.
    sim_sources = list((SRC_ROOT / "sim").glob("*.py"))
    assert sim_sources
    names = "\n".join(p.read_text(encoding="utf-8") for p in sim_sources)
    assert "class ClockedArraySimulator" in names
