"""Tests for the analysis toolbox: growth fitting, Monte Carlo, scheme
evaluation."""

import math

import pytest

from repro.analysis.montecarlo import run_trials, summarize
from repro.analysis.scaling import classify_growth, doubling_ratios, fit_growth
from repro.analysis.skew import compare_schemes, evaluate_scheme
from repro.arrays.topologies import linear_array, mesh
from repro.core.models import DifferenceModel, SummationModel


class TestFitGrowth:
    def test_recovers_linear(self):
        xs = [4, 8, 16, 32, 64]
        ys = [2 * x + 1 for x in xs]
        fit = classify_growth(xs, ys)
        assert fit.law == "linear"
        assert fit.slope == pytest.approx(2.0)

    def test_recovers_sqrt(self):
        xs = [4, 16, 64, 256, 1024]
        ys = [3 * math.sqrt(x) for x in xs]
        assert classify_growth(xs, ys).law == "sqrt"

    def test_recovers_constant_despite_noise(self):
        xs = [4, 8, 16, 32]
        ys = [5.0, 5.01, 4.99, 5.0]
        assert classify_growth(xs, ys).law == "constant"

    def test_recovers_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [0.5 * x * x for x in xs]
        assert classify_growth(xs, ys).law == "quadratic"

    def test_recovers_log(self):
        xs = [4, 16, 64, 256, 1024, 4096]
        ys = [7 * math.log(x) for x in xs]
        assert classify_growth(xs, ys).law == "log"

    def test_prediction(self):
        xs = [1, 2, 3, 4]
        ys = [2, 4, 6, 8]
        fit = classify_growth(xs, ys)
        assert fit.predict(10) == pytest.approx(20.0)

    def test_fit_returns_all_laws(self):
        fits = fit_growth([1, 2, 3, 4], [1, 2, 3, 4])
        assert set(fits) == {"constant", "log", "sqrt", "linear", "quadratic"}

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            fit_growth([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_growth([1, 2, 3], [1, 2])

    def test_doubling_ratios(self):
        xs = [4, 8, 16, 32]
        ys = [1.0, 2.0, 4.0, 8.0]
        ratios = doubling_ratios(xs, ys)
        assert all(r == pytest.approx(2.0) for _x, r in ratios)

    def test_doubling_ratios_constant_series(self):
        ratios = doubling_ratios([4, 8, 16], [3.0, 3.0, 3.0])
        assert all(r == pytest.approx(1.0) for _x, r in ratios)


class TestMonteCarlo:
    def test_summary_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == 3.0
        assert summary.minimum == 1.0 and summary.maximum == 5.0
        assert summary.ci_low < 3.0 < summary.ci_high

    def test_run_trials_deterministic_seeds(self):
        trial = lambda seed: float(seed % 7)
        a = run_trials(trial, 20, base_seed=3)
        b = run_trials(trial, 20, base_seed=3)
        assert a.mean == b.mean

    def test_contains(self):
        summary = summarize([10.0, 10.1, 9.9, 10.0])
        assert summary.contains(10.0)
        assert not summary.contains(12.0)

    def test_ci_shrinks_with_trials(self):
        import random

        def trial(seed):
            return random.Random(seed).gauss(0, 1)

        few = run_trials(trial, 20)
        many = run_trials(trial, 200)
        assert many.ci_half_width < few.ci_half_width

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            summarize([1.0])
        with pytest.raises(ValueError):
            run_trials(lambda s: 1.0, 1)


class TestSchemeEvaluation:
    def test_evaluate_spine_on_linear(self):
        array = linear_array(32)
        ev = evaluate_scheme(array, "spine", SummationModel(m=1.0, eps=0.1))
        assert ev.sigma_bound == pytest.approx(1.1)
        assert ev.sigma_floor == pytest.approx(0.1)
        assert ev.tau_pipelined < ev.tau_equipotential

    def test_empirical_between_floor_and_bound_plus_buffers(self):
        array = linear_array(64)
        ev = evaluate_scheme(array, "spine", SummationModel(m=1.0, eps=0.2), eps=0.2)
        assert ev.sigma_empirical <= ev.sigma_bound + 2.5  # buffer asymmetry slack

    def test_period_pipelined_vs_equipotential(self):
        array = linear_array(128)
        ev = evaluate_scheme(array, "spine", SummationModel())
        assert ev.period(delta=1.0, pipelined=True) < ev.period(delta=1.0, pipelined=False)

    def test_compare_schemes_orders_by_sigma(self):
        array = mesh(4, 4)
        evs = compare_schemes(array, ["serpentine", "htree"], DifferenceModel())
        sigmas = [e.sigma_bound for e in evs]
        assert sigmas == sorted(sigmas)
        assert evs[0].scheme == "htree"  # d=0 wins under the difference model

    def test_summation_model_flips_winner_on_linear(self):
        array = linear_array(16)
        evs = compare_schemes(array, ["spine", "dissection-1d"], SummationModel())
        assert evs[0].scheme == "spine"

    def test_prebuilt_tree_accepted(self):
        from repro.clocktree.spine import spine_clock

        array = linear_array(8)
        ev = evaluate_scheme(
            array, "custom", SummationModel(), tree=spine_clock(array)
        )
        assert ev.scheme == "custom"
