"""Tests for automatic hold-fix padding ("adding delay to circuits")."""

import pytest

from repro.arrays.systolic import build_fir_array, build_odd_even_sorter
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.core.padding import compute_hold_padding, plan_safe_clocking
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator


def coflow_program_and_schedule(delta_irrelevant=True):
    """FIR array with the clock running WITH the data: every edge races."""
    program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
    buffered = BufferedClockTree(
        spine_clock(program.array, order=["src", 0, 1, 2, "snk"]),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=3),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, 10.0, program.array.comm.nodes()
    )
    return program, schedule


class TestComputePadding:
    def test_zero_for_ideal_schedule(self):
        program, _ = coflow_program_and_schedule()
        ideal = ClockSchedule.ideal(program.array.comm.nodes(), 10.0)
        padding = compute_hold_padding(program.array, ideal, delta=1.0)
        assert all(v == 0.0 for v in padding.values())

    def test_positive_on_racing_edges(self):
        program, schedule = coflow_program_and_schedule()
        padding = compute_hold_padding(program.array, schedule, delta=0.5)
        racing = [e for e, v in padding.items() if v > 0]
        assert racing  # clock leads data on every forward edge

    def test_padding_matches_skew_minus_delta(self):
        program, schedule = coflow_program_and_schedule()
        padding = compute_hold_padding(program.array, schedule, delta=0.5)
        for (u, v), pad in padding.items():
            if pad > 0:
                lead = schedule.offset(v) - schedule.offset(u)
                assert pad == pytest.approx(lead - 0.5, abs=1e-6)

    def test_margin_adds_guard_band(self):
        program, schedule = coflow_program_and_schedule()
        base = compute_hold_padding(program.array, schedule, delta=0.5)
        guarded = compute_hold_padding(program.array, schedule, delta=0.5, margin=0.3)
        for edge, pad in base.items():
            if pad > 0:
                assert guarded[edge] == pytest.approx(pad + 0.3, abs=1e-9)

    def test_rejects_negative_args(self):
        program, schedule = coflow_program_and_schedule()
        with pytest.raises(ValueError):
            compute_hold_padding(program.array, schedule, delta=-1)


class TestPlanSafeClocking:
    def test_plan_eliminates_hazards_and_runs_clean(self):
        program, schedule = coflow_program_and_schedule()
        plan = plan_safe_clocking(program.array, schedule, delta=0.5)
        sim = ClockedArraySimulator(
            program, schedule, delta=0.5, edge_padding=plan.padding
        )
        assert sim.hold_hazards() == []
        assert sim.minimum_safe_period() <= plan.min_safe_period + 1e-9
        result = sim.run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())

    def test_without_plan_the_same_setup_fails(self):
        program, schedule = coflow_program_and_schedule()
        sim = ClockedArraySimulator(program, schedule, delta=0.5)
        assert sim.hold_hazards() != []
        assert not sim.run().clean

    def test_plan_on_bidirectional_sorter(self):
        program = build_odd_even_sorter([4.0, 1.0, 3.0, 2.0])
        buffered = BufferedClockTree(
            spine_clock(program.array),
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=5),
        )
        schedule = ClockSchedule.from_buffered_tree(
            buffered, 30.0, program.array.comm.nodes()
        )
        plan = plan_safe_clocking(program.array, schedule, delta=0.5)
        sim = ClockedArraySimulator(
            program, schedule, delta=0.5, edge_padding=plan.padding
        )
        result = sim.run()
        assert result.clean
        assert result.result == [1.0, 2.0, 3.0, 4.0]

    def test_plan_statistics(self):
        program, schedule = coflow_program_and_schedule()
        plan = plan_safe_clocking(program.array, schedule, delta=0.5)
        assert plan.padded_edges > 0
        assert plan.total_padding > 0
        assert plan.min_safe_period > 0

    def test_padding_raises_setup_requirement(self):
        """The trade-off: fixing hold with delay makes setup harder."""
        program, schedule = coflow_program_and_schedule()
        plan = plan_safe_clocking(program.array, schedule, delta=0.5)
        bare = ClockedArraySimulator(program, schedule, delta=0.5)
        padded = ClockedArraySimulator(
            program, schedule, delta=0.5, edge_padding=plan.padding
        )
        assert padded.minimum_safe_period() >= bare.minimum_safe_period()

    def test_negative_padding_rejected_by_simulator(self):
        program, schedule = coflow_program_and_schedule()
        with pytest.raises(ValueError):
            ClockedArraySimulator(
                program, schedule, delta=0.5, edge_padding={("src", 0): -1.0}
            )
