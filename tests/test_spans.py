"""Unit tests for the span layer: emission, nesting, context propagation,
and forest reassembly from the flat event stream."""

import pickle

import pytest

from repro.obs.spans import (
    SpanContext,
    SpanTracer,
    assemble_spans,
    iter_spans,
    span_index,
)
from repro.obs.trace import NULL_TRACER, RecordingTracer, TraceEvent


class TestSpanTracer:
    def test_disabled_tracer_emits_nothing(self):
        spans = SpanTracer(NULL_TRACER)
        assert not spans.enabled
        with spans.span("root") as handle:
            handle.annotate(ignored=True)  # the null handle swallows this
        assert spans.current_id is None

    def test_default_tracer_is_the_null_tracer(self):
        assert not SpanTracer().enabled

    def test_start_and_end_events_emitted(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("compile", t=1.5, foo=7):
            pass
        start, end = tracer.events
        assert (start.cat, start.kind) == ("span", "start")
        assert (end.cat, end.kind) == ("span", "end")
        assert start.data["name"] == "compile"
        assert start.data["attrs"] == {"foo": 7}
        assert start.t == 1.5
        assert end.data["id"] == start.data["id"]
        assert end.data["status"] == "ok"
        assert end.data["wall_s"] >= 0.0

    def test_nesting_sets_parent(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("outer"):
            outer_id = spans.current_id
            with spans.span("inner"):
                assert spans.current_id != outer_id
        starts = [e for e in tracer.events if e.kind == "start"]
        assert starts[0].data["parent"] is None
        assert starts[1].data["parent"] == starts[0].data["id"]

    def test_error_status_on_raise(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with pytest.raises(RuntimeError):
            with spans.span("doomed"):
                raise RuntimeError("boom")
        end = [e for e in tracer.events if e.kind == "end"][0]
        assert end.data["status"] == "error"

    def test_annotate_lands_in_end_event(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("work", first=1) as handle:
            handle.annotate(second=2)
        start = tracer.events[0]
        end = tracer.events[1]
        assert start.data["attrs"] == {"first": 1}
        assert end.data["attrs"] == {"second": 2}

    def test_context_is_picklable_and_seeds_parent(self):
        tracer = RecordingTracer()
        parent = SpanTracer(tracer, worker="main")
        with parent.span("root"):
            ctx = parent.context()
        ctx = pickle.loads(pickle.dumps(ctx))
        assert isinstance(ctx, SpanContext)
        child = SpanTracer(RecordingTracer(), worker="w0", parent_id=ctx.parent_id)
        with child.span("chunk"):
            pass
        start = child.tracer.events[0]
        assert start.data["parent"] == ctx.parent_id
        assert start.data["worker"] == "w0"

    def test_ids_are_worker_scoped(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer, worker="w3")
        with spans.span("a"):
            pass
        with spans.span("b"):
            pass
        ids = [e.data["id"] for e in tracer.events if e.kind == "start"]
        assert ids == ["w3:0", "w3:1"]


class TestAssembleSpans:
    def _events(self, spans_fn):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        spans_fn(spans)
        return tracer.events

    def test_round_trip_tree(self):
        def build(spans):
            with spans.span("root", t=0.0):
                with spans.span("left", t=1.0):
                    pass
                with spans.span("right", t=2.0):
                    pass

        roots = assemble_spans(self._events(build))
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["left", "right"]
        assert all(not span.open for span in root.walk())

    def test_non_span_events_are_ignored(self):
        tracer = RecordingTracer()
        tracer.event(0.0, "tick", "fire", cell=0, tick=0)
        spans = SpanTracer(tracer)
        with spans.span("only"):
            pass
        tracer.event(9.0, "clocked", "run", makespan=9.0)
        roots = assemble_spans(tracer.events)
        assert [r.name for r in roots] == ["only"]

    def test_missing_end_yields_open_span(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("crashed"):
            events = list(tracer.events)  # snapshot before the end lands
        roots = assemble_spans(events)
        assert len(roots) == 1 and roots[0].open
        assert roots[0].status == "open"

    def test_orphan_end_is_dropped(self):
        orphan = TraceEvent(
            t=1.0, cat="span", kind="end", cell=None,
            data={"id": "ghost:0", "wall_s": 0.1, "status": "ok", "attrs": {}},
        )
        assert assemble_spans([orphan]) == []

    def test_orphan_child_is_promoted_to_root(self):
        # A child whose parent never appears in the stream (e.g. the
        # coordinator's file was truncated) must still be visible.
        start = TraceEvent(
            t=0.0, cat="span", kind="start", cell=None,
            data={
                "id": "w0:5", "parent": "main:99", "name": "stranded",
                "worker": "w0", "wall_t0": 0.0, "attrs": {},
            },
        )
        roots = assemble_spans([start])
        assert [r.name for r in roots] == ["stranded"]

    def test_iter_spans_and_index(self):
        def build(spans):
            with spans.span("root"):
                with spans.span("child"):
                    pass

        roots = assemble_spans(self._events(build))
        names = [s.name for s in iter_spans(roots)]
        assert names == ["root", "child"]
        index = span_index(roots)
        assert set(index) == {"main:0", "main:1"}
        assert index["main:1"].name == "child"
