"""More property-based tests: the engineering layer's invariants.

* Any schedule, any program: the padding plan + its period run clean.
* Jitter below the timing margin never corrupts a run.
* The priority queue agrees with a binary heap on arbitrary op sequences.
* Spatial-gradient variation keeps the physical-model bracket valid with a
  position-aware epsilon.
* Folding and comb transforms preserve the constant-neighbor-skew property
  for arbitrary sizes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.priority_queue import build_priority_queue, reference_priority_queue
from repro.arrays.systolic import build_fir_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import comb_linear_array, folded_linear_array, spine_clock
from repro.core.padding import plan_safe_clocking
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.faults import JitteredSchedule


@st.composite
def fir_setups(draw):
    taps = draw(st.integers(min_value=2, max_value=6))
    xs = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10), min_size=2, max_size=8
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=-5, max_value=5), min_size=taps, max_size=taps
        )
    )
    seed = draw(st.integers(0, 10_000))
    coflow = draw(st.booleans())
    return weights, xs, seed, coflow


@given(fir_setups())
@settings(max_examples=25, deadline=None)
def test_padding_plan_always_runs_clean(setup):
    weights, xs, seed, coflow = setup
    program = build_fir_array(weights, xs)
    k = len(weights)
    order = (
        ["src", *range(k), "snk"] if coflow else ["snk", *range(k - 1, -1, -1), "src"]
    )
    buffered = BufferedClockTree(
        spine_clock(program.array, order=order),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=seed),
    )
    probe = ClockSchedule.from_buffered_tree(buffered, 1.0, program.array.comm.nodes())
    plan = plan_safe_clocking(program.array, probe, delta=0.5)
    period = max(plan.min_safe_period * 1.01, 1e-6)
    schedule = ClockSchedule.from_buffered_tree(
        buffered, period, program.array.comm.nodes()
    )
    sim = ClockedArraySimulator(
        program, schedule, delta=0.5, edge_padding=plan.padding
    )
    result = sim.run()
    assert result.clean
    assert result.result == program.run_lockstep()


@given(
    st.integers(min_value=0, max_value=5000),
    st.floats(min_value=0.0, max_value=0.4),
)
@settings(max_examples=25, deadline=None)
def test_jitter_below_margin_never_corrupts(seed, amplitude):
    program = build_fir_array([1.0, -2.0, 0.5], [1.0, 2.0, 3.0, 4.0])
    buffered = BufferedClockTree(
        spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=seed),
    )
    # Period with ample margin: skew + delta + 2*max jitter + slack.
    schedule = ClockSchedule.from_buffered_tree(
        buffered, 12.0, program.array.comm.nodes()
    )
    jittered = JitteredSchedule(schedule, amplitude=amplitude, seed=seed)
    result = ClockedArraySimulator(program, jittered, delta=1.0).run()
    assert result.clean
    assert result.result == program.run_lockstep()


@st.composite
def op_sequences(draw):
    length = draw(st.integers(min_value=1, max_value=30))
    ops = []
    live = 0
    for _ in range(length):
        if live > 0 and draw(st.booleans()):
            ops.append(("ext", None))
            live -= 1
        else:
            ops.append(("ins", float(draw(st.integers(0, 99)))))
            live += 1
    drain = draw(st.integers(0, live))
    ops.extend([("ext", None)] * drain)
    return ops


@given(op_sequences())
@settings(max_examples=30, deadline=None)
def test_priority_queue_matches_heap(ops):
    got = build_priority_queue(ops).run_lockstep()
    assert got == reference_priority_queue(ops)


@given(
    st.integers(min_value=2, max_value=200),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_folded_array_constant_pair_skew(n, seed):
    array, tree = folded_linear_array(n)
    worst = max(tree.path_length(a, b) for a, b in array.communicating_pairs())
    assert worst <= 3.0 + 1e-9


@given(
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_comb_array_constant_pair_skew(n, tooth):
    array, tree = comb_linear_array(n, tooth_height=tooth)
    pairs = array.communicating_pairs()
    if not pairs:
        return
    worst = max(tree.path_length(a, b) for a, b in pairs)
    assert worst <= 1.0 + 1e-9
    assert array.max_communication_distance() <= 1.0 + 1e-9


@given(
    st.floats(min_value=-0.02, max_value=0.02),
    st.floats(min_value=-0.02, max_value=0.02),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_spatial_gradient_skew_bracket(gx, gy, seed):
    """With |gradient| * |coordinate| <= eps_eff, measured skew stays within
    the summation bracket (m_eff + eps_eff) * s."""
    from repro.arrays.topologies import mesh
    from repro.clocktree.htree import htree_for_array
    from repro.delay.buffer import InverterPairModel
    from repro.delay.variation import SpatialGradientVariation

    array = mesh(4, 4)
    tree = htree_for_array(array)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1e9,
        wire_variation=SpatialGradientVariation(m=1.0, gx=gx, gy=gy, seed=seed),
        buffer_model=InverterPairModel(nominal=1e-12),
    )
    max_coord = 4.0
    eps_eff = (abs(gx) + abs(gy)) * max_coord
    for a, b in array.communicating_pairs():
        s = tree.path_length(a, b)
        assert buffered.skew(a, b) <= (1.0 + eps_eff) * s + 1e-6
