"""Property tests for the A8-breaking jitter model and the violation
summary: the edge cases the check suite's oracles lean on."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.obs.schema import validate_violation_summary
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import TimingViolation
from repro.sim.faults import JitteredSchedule, summarize_violations


# ----------------------------------------------------------------------
# JitteredSchedule: bounded drift must never reorder ticks
# ----------------------------------------------------------------------
@given(
    period=st.floats(min_value=0.1, max_value=100.0,
                     allow_nan=False, allow_infinity=False),
    fraction=st.floats(min_value=0.0, max_value=0.999),
    seed=st.integers(0, 2**20),
    offsets=st.lists(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=6,
    ),
)
@settings(max_examples=80, deadline=None)
def test_jittered_ticks_stay_strictly_monotone(period, fraction, seed, offsets):
    """Amplitude anywhere below period/2 — including just under it — keeps
    every cell's tick sequence strictly increasing (drift, not reordering)."""
    base = ClockSchedule(
        {f"c{i}": off for i, off in enumerate(offsets)}, period
    )
    amplitude = fraction * (period / 2)
    if amplitude >= period / 2:  # float round-up at fraction ~ 0.999
        amplitude = math.nextafter(period / 2, 0.0)
    schedule = JitteredSchedule(base, amplitude, seed=seed)
    for cell in base.cells():
        times = [schedule.tick_time(cell, k) for k in range(12)]
        assert all(b > a for a, b in zip(times, times[1:])), (
            f"ticks reordered at {cell!r} with amplitude {amplitude}"
        )
        # Jitter stays within its advertised band around the base time.
        for k, t in enumerate(times):
            assert abs(t - base.tick_time(cell, k)) <= amplitude + 1e-12


def test_jitter_amplitude_bounds_enforced():
    base = ClockSchedule({"a": 0.0}, 2.0)
    with pytest.raises(ValueError, match="non-negative"):
        JitteredSchedule(base, -0.1)
    with pytest.raises(ValueError, match="half the period"):
        JitteredSchedule(base, 1.0)  # exactly period/2 is already too much
    # Just under the bound is accepted.
    JitteredSchedule(base, math.nextafter(1.0, 0.0))


def test_jitter_amplitude_just_under_half_period_is_extreme_but_safe():
    """The boundary case the full suite's metamorphic check relies on:
    amplitude one ulp below period/2 still never swaps adjacent ticks."""
    period = 1.0
    base = ClockSchedule({"x": 0.0, "y": 0.375}, period)
    schedule = JitteredSchedule(
        base, math.nextafter(period / 2, 0.0), seed=7
    )
    for cell in ("x", "y"):
        times = [schedule.tick_time(cell, k) for k in range(200)]
        assert all(b > a for a, b in zip(times, times[1:]))


# ----------------------------------------------------------------------
# summarize_violations: edge cases + schema round-trip
# ----------------------------------------------------------------------
def _violation(edge, tick, kind):
    # actual > expected -> "race"; actual <= expected -> "stale".
    expected = 5
    actual = expected + 1 if kind == "race" else expected - 1
    return TimingViolation(
        edge=edge,
        receiver_tick=tick,
        expected_sender_tick=expected,
        actual_sender_tick=actual,
    )


def _assert_summary_consistent(violations):
    summary = summarize_violations(violations)
    assert summary.total == len(violations)
    assert summary.stale + summary.race == summary.total
    assert summary.clean == (not violations)
    if violations:
        ticks = [v.receiver_tick for v in violations]
        assert summary.first_failure_tick == min(ticks)
        assert summary.last_failure_tick == max(ticks)
        assert summary.edges_affected == len({v.edge for v in violations})
        assert sum(summary.per_cell.values()) == summary.total
        worst_edge, worst_count = summary.worst_edge
        per_edge = {}
        for v in violations:
            per_edge[v.edge] = per_edge.get(v.edge, 0) + 1
        assert worst_count == max(per_edge.values())
        assert per_edge[worst_edge] == worst_count
    # to_dict must round-trip through the obs schema validator.
    assert validate_violation_summary(summary.to_dict()) == []
    return summary


def test_summary_empty_list():
    summary = _assert_summary_consistent([])
    assert summary.clean
    assert summary.first_failure_tick == -1
    assert summary.last_failure_tick == -1
    assert summary.worst_edge == ((None, None), 0)


def test_summary_single_violation():
    summary = _assert_summary_consistent([_violation(("a", "b"), 3, "stale")])
    assert summary.total == 1
    assert summary.stale == 1 and summary.race == 0
    assert summary.first_failure_tick == summary.last_failure_tick == 3
    assert summary.worst_edge == (("a", "b"), 1)
    assert dict(summary.per_cell) == {"b": 1}


def test_summary_all_stale():
    violations = [
        _violation(("a", "b"), t, "stale") for t in (2, 4, 9)
    ] + [_violation(("b", "c"), 4, "stale")]
    summary = _assert_summary_consistent(violations)
    assert summary.stale == 4 and summary.race == 0
    assert summary.first_failure_tick == 2
    assert summary.last_failure_tick == 9


def test_summary_duplicate_edges_aggregate():
    violations = [
        _violation(("u", "v"), 1, "race"),
        _violation(("u", "v"), 2, "stale"),
        _violation(("u", "v"), 3, "race"),
        _violation(("w", "v"), 1, "stale"),
    ]
    summary = _assert_summary_consistent(violations)
    assert summary.edges_affected == 2
    assert summary.worst_edge == (("u", "v"), 3)
    assert dict(summary.per_cell) == {"v": 4}
    assert summary.stale == 2 and summary.race == 2


@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from([("a", "b"), ("b", "c"), ("c", "a"), (0, 1)]),
            st.integers(min_value=0, max_value=50),
            st.sampled_from(["stale", "race"]),
        ),
        min_size=0, max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_summary_invariants_hold_for_arbitrary_violation_lists(entries):
    violations = [_violation(edge, tick, kind) for edge, tick, kind in entries]
    _assert_summary_consistent(violations)
