"""The perf microbenchmark harness: timings, artifact shape, CLI."""

import json

import pytest

from repro.analysis.perf import (
    BENCH_HEADERS,
    KernelTiming,
    bench_montecarlo,
    bench_skew_kernels,
    run_perf_suite,
    speedup_by_kernel,
    write_bench_results,
)
from repro.cli import main
from repro.obs.schema import validate_benchmark_result
from repro.obs.trace import RecordingTracer


class TestKernelBenches:
    def test_skew_kernels_report_equivalent_results(self):
        results = bench_skew_kernels(side=4, repeats=1)
        kernels = {r.kernel for r in results}
        assert {"max_skew_bound", "max_skew_bound_cold",
                "max_skew_lower_bound", "buffered_max_skew"} <= kernels
        for r in results:
            assert r.size == 16
            assert r.items > 0
            assert r.baseline_s > 0 and r.optimized_s > 0
            assert r.max_abs_diff <= 1e-9

    def test_montecarlo_bench_is_deterministic(self):
        r = bench_montecarlo(trials=2, workers=2)
        assert r.max_abs_diff == 0.0
        assert r.size == 2 and r.items == 2

    def test_suite_emits_tracer_events(self):
        tracer = RecordingTracer()
        results = run_perf_suite(
            sides=(4,), repeats=1, include_montecarlo=False, tracer=tracer
        )
        events = tracer.by_kind("perf", "kernel")
        assert len(events) == len(results)
        assert events[0].data["kernel"] == results[0].kernel


class TestArtifact:
    def test_write_bench_results_is_schema_valid(self, tmp_path):
        results = bench_skew_kernels(side=4, repeats=1)
        out = tmp_path / "BENCH_perf.json"
        payload = write_bench_results(results, str(out), wall_s=0.5)
        assert validate_benchmark_result(payload) == []
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert on_disk["headers"] == BENCH_HEADERS
        assert on_disk["meta"]["timing"]["wall_s"] == 0.5

    def test_speedup_by_kernel_takes_worst(self):
        rows = [
            KernelTiming("k", 16, 8, 1.0, 0.1, 0.0),
            KernelTiming("k", 64, 8, 1.0, 0.5, 0.0),
        ]
        payload = {
            "headers": BENCH_HEADERS,
            "rows": [r.row() for r in rows],
        }
        assert speedup_by_kernel(payload) == {"k": pytest.approx(2.0)}

    def test_invalid_payload_rejected_before_write(self, tmp_path):
        # A row narrower than the header violates the cross-field schema
        # invariant; nothing may reach the disk in that case.
        class Broken(KernelTiming):
            def row(self):
                return ["only-one-cell"]

        out = tmp_path / "bad.json"
        with pytest.raises(ValueError):
            write_bench_results(
                [Broken("k", 16, 8, 1.0, 1.0, 0.0)], str(out)
            )
        assert not out.exists()


class TestCliBench:
    def test_bench_command_writes_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        code = main([
            "bench", "--sides", "4", "--trials", "2", "--workers", "2",
            "--repeats", "1", "--no-montecarlo", "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "max_skew_bound" in captured
        assert "schema-validated" in captured
        payload = json.loads(out.read_text())
        assert validate_benchmark_result(payload) == []
        assert payload["name"] == "BENCH_perf"
