"""The array-compiled simulation kernels vs their scalar oracles.

Deterministic (non-hypothesis) coverage of :mod:`repro.sim.compiled` and
:mod:`repro.sim.batch`: exact clocked equivalence across regimes and
workloads, the stream/replay split, the tandem recurrence, the hybrid
max-plus step, and the ``CompiledTrialContext`` Monte-Carlo cache.  The
randomized sweep lives in ``test_compiled_properties.py``.
"""

import dataclasses

import pytest

from repro.analysis.montecarlo import CompiledTrialContext, run_trials
from repro.arrays.systolic import (
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.builders import serpentine_clock
from repro.core.padding import plan_safe_clocking
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.compiled import CompiledClockedKernel, compile_clocked
from repro.sim.dataflow import (
    SelfTimedProgramSimulator,
    constant_service,
    hashed_service,
)
from repro.sim.faults import JitteredSchedule


def _programs(include_matmul=True):
    progs = [
        ("fir", build_fir_array([0.5, -1.25, 2.0], [1.0, -2.0, 3.5, 0.25, -0.5])),
        ("matvec", build_matvec_array(
            [[1.0, -2.0, 0.5], [0.0, 3.0, -1.0], [2.5, 0.25, 1.0]],
            [1.0, -1.0, 2.0],
        )),
        ("sorter", build_odd_even_sorter([3.0, -1.0, 2.5, 0.0, -4.0])),
    ]
    if include_matmul:
        progs.append(("matmul", build_mesh_matmul(
            [[1.0, 2.0], [3.0, 4.0]], [[5.0, -6.0], [-7.0, 8.0]],
        )))
    return progs


def _setup(program, seed=11, delta=1.0):
    tree = serpentine_clock(program.array)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1.0,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=seed),
    )
    cells = program.array.comm.nodes()
    probe = ClockSchedule.from_buffered_tree(buffered, 1.0, cells)
    plan = plan_safe_clocking(program.array, probe, delta=delta)
    return buffered, cells, plan


def _assert_identical(compiled, scalar):
    assert repr(compiled.result) == repr(scalar.result)
    assert compiled.violations == scalar.violations  # contents AND order
    assert compiled.ticks == scalar.ticks
    assert compiled.makespan == scalar.makespan


@pytest.mark.parametrize("name,program", _programs())
def test_compiled_clocked_matches_scalar_all_regimes(name, program):
    delta = 1.0
    buffered, cells, plan = _setup(program, delta=delta)
    period = plan.min_safe_period * 1.05 + 1e-6
    safe = ClockSchedule.from_buffered_tree(buffered, period, cells)
    tight = ClockSchedule.from_buffered_tree(buffered, 0.5 * period, cells)
    jittered = JitteredSchedule(safe, amplitude=0.3 * period, seed=7)
    for schedule, padding in [
        (safe, plan.padding),
        (tight, None),
        (jittered, plan.padding),
    ]:
        sim = ClockedArraySimulator(
            program, schedule, delta=delta, edge_padding=padding
        )
        _assert_identical(sim.run(), sim.run_scalar())


def test_clean_compiled_run_is_lockstep_equal():
    for name, program in _programs():
        cells = program.array.comm.nodes()
        schedule = ClockSchedule({c: 0.0 for c in cells}, period=10.0)
        sim = ClockedArraySimulator(program, schedule, delta=1.0)
        run = sim.run()
        assert run.clean
        assert repr(run.result) == repr(program.run_lockstep())


def test_stream_path_engages_for_acyclic_and_not_for_cyclic():
    for name, program in _programs():
        cells = program.array.comm.nodes()
        schedule = ClockSchedule({c: 0.0 for c in cells}, period=10.0)
        sim = ClockedArraySimulator(program, schedule, delta=1.0)
        sim.run()
        kernel = sim.compiled()
        if name == "sorter":  # bidirectional COMM graph — replay path
            assert kernel._stream_order is False
        else:
            assert kernel._stream_order not in (None, False)


def test_compiled_kernel_cached_and_explicit_ticks():
    name, program = _programs(include_matmul=False)[0]
    cells = program.array.comm.nodes()
    schedule = ClockSchedule({c: 0.0 for c in cells}, period=10.0)
    sim = ClockedArraySimulator(program, schedule, delta=1.0)
    assert sim.compiled() is sim.compiled()  # cached per comm version
    assert compile_clocked(sim) is sim.compiled()
    assert isinstance(sim.compiled(), CompiledClockedKernel)
    ticks = program.cycles + 3
    _assert_identical(sim.run(ticks=ticks), sim.run_scalar(ticks=ticks))
    with pytest.raises(ValueError):
        sim.run(ticks=0)


def test_instrumented_run_uses_scalar_path():
    from repro.obs.trace import RecordingTracer

    name, program = _programs(include_matmul=False)[0]
    cells = program.array.comm.nodes()
    schedule = ClockSchedule({c: 0.0 for c in cells}, period=10.0)
    plain = ClockedArraySimulator(program, schedule, delta=1.0)
    tracer = RecordingTracer()
    traced = ClockedArraySimulator(program, schedule, delta=1.0, tracer=tracer)
    _assert_identical(traced.run(), plain.run())
    assert tracer.events  # the scalar path emitted per-event spans


def test_recurrence_compiled_matches_scalar():
    for name, program in _programs():
        for service in (
            None,  # default constant 1.0
            constant_service(2.5),
            hashed_service(1.0, 4.0, 0.3, seed=3),
        ):
            sim = SelfTimedProgramSimulator(
                program, service=service, wire_delay=0.5
            )
            for waves in (None, 1, 2, 7):
                assert sim.recurrence_makespan(waves) == (
                    sim.recurrence_makespan_scalar(waves)
                )


def test_recurrence_matches_engine_run():
    for name, program in _programs():
        sim = SelfTimedProgramSimulator(
            program, service=hashed_service(1.0, 3.0, 0.2, seed=9),
            wire_delay=0.25,
        )
        run = sim.run()
        assert abs(run.makespan - sim.recurrence_makespan()) <= 1e-9


# ----------------------------------------------------------------------
# CompiledTrialContext
# ----------------------------------------------------------------------
def _structure():
    return {"built": True, "values": [1.0, 2.0, 3.0]}


def test_trial_context_builds_once_per_thread():
    calls = []

    def build():
        calls.append(1)
        return object()

    ctx = CompiledTrialContext(build)
    first = ctx.get()
    assert ctx.get() is first
    assert len(calls) == 1


def test_trial_context_pickles_without_contents():
    import pickle

    ctx = CompiledTrialContext(_structure)
    ctx.get()
    clone = pickle.loads(pickle.dumps(ctx))
    assert clone.get() == _structure()
    assert clone.get() is not ctx.get()


def test_run_trials_summary_identical_with_and_without_cache():
    def uncached_trial(seed):
        structure = _structure()  # rebuilt every trial
        return structure["values"][seed % 3] * seed

    ctx = CompiledTrialContext(_structure)

    def cached_trial(seed):
        return ctx.get()["values"][seed % 3] * seed

    for workers in (None, 2):
        a = run_trials(uncached_trial, 12, base_seed=5, workers=workers)
        b = run_trials(cached_trial, 12, base_seed=5, workers=workers)
        assert a == b
