"""Tests for the check registry machinery (repro.check.registry)."""

import pytest

from repro.check import build_report
from repro.check.registry import (
    CheckContext,
    CheckFailure,
    CheckRegistry,
    require,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_check_report
from repro.obs.trace import RecordingTracer


def _registry_with(*entries):
    reg = CheckRegistry()
    for name, kind, suites, func in entries:
        reg.register(name, kind, f"doc for {name}", suites=suites)(func)
    return reg


class TestRegistration:
    def test_register_and_lookup(self):
        reg = _registry_with(
            ("alpha", "invariant", ("quick", "full"), lambda ctx: {"ok": True}),
        )
        assert len(reg) == 1
        assert reg.get("alpha").kind == "invariant"

    def test_duplicate_name_rejected(self):
        reg = _registry_with(
            ("alpha", "invariant", ("quick", "full"), lambda ctx: {}),
        )
        with pytest.raises(ValueError, match="already registered"):
            reg.register("alpha", "invariant", "dup")(lambda ctx: {})

    def test_unknown_kind_rejected(self):
        reg = CheckRegistry()
        with pytest.raises(ValueError, match="unknown check kind"):
            reg.register("x", "vibes", "nope")(lambda ctx: {})

    def test_bad_suites_rejected(self):
        reg = CheckRegistry()
        with pytest.raises(ValueError, match="suites"):
            reg.register("x", "invariant", "nope", suites=("nightly",))(
                lambda ctx: {}
            )

    def test_suite_selection(self):
        reg = _registry_with(
            ("everywhere", "invariant", ("quick", "full"), lambda ctx: {}),
            ("full-only", "differential", ("full",), lambda ctx: {}),
        )
        assert [c.name for c in reg.checks("quick")] == ["everywhere"]
        assert [c.name for c in reg.checks("full")] == ["everywhere", "full-only"]
        with pytest.raises(ValueError, match="unknown suite"):
            reg.checks("nightly")


class TestRun:
    def test_failure_becomes_result_not_exception(self):
        def failing(ctx):
            require(False, "claim broken", measured=3, bound=2)

        reg = _registry_with(("bad", "invariant", ("quick", "full"), failing))
        (result,) = reg.run("quick")
        assert not result.passed
        assert result.error == "claim broken"
        assert result.details == {"measured": 3, "bound": 2}

    def test_unexpected_exception_becomes_failure(self):
        def broken(ctx):
            raise RuntimeError("oracle bug")

        reg = _registry_with(("broken", "invariant", ("quick", "full"), broken))
        (result,) = reg.run("quick")
        assert not result.passed
        assert "RuntimeError" in result.error

    def test_pass_collects_details(self):
        reg = _registry_with(
            ("good", "metamorphic", ("quick", "full"), lambda ctx: {"n": 7}),
        )
        (result,) = reg.run("quick", seed=5)
        assert result.passed and result.error is None
        assert result.details == {"n": 7}
        assert result.duration_s >= 0.0

    def test_context_carries_seed_and_suite(self):
        seen = {}

        def probe(ctx):
            seen["seed"] = ctx.seed
            seen["suite"] = ctx.suite
            seen["full"] = ctx.full
            return {}

        reg = _registry_with(("probe", "invariant", ("quick", "full"), probe))
        reg.run("full", seed=99)
        assert seen == {"seed": 99, "suite": "full", "full": True}

    def test_context_rng_is_deterministic_and_salted(self):
        ctx = CheckContext(seed=3)
        a = ctx.rng("salt-a").random()
        assert ctx.rng("salt-a").random() == a
        assert ctx.rng("salt-b").random() != a

    def test_names_filter(self):
        reg = _registry_with(
            ("one", "invariant", ("quick", "full"), lambda ctx: {}),
            ("two", "invariant", ("quick", "full"), lambda ctx: {}),
        )
        results = reg.run("quick", names=["two"])
        assert [r.name for r in results] == ["two"]
        with pytest.raises(KeyError, match="unknown checks"):
            reg.run("quick", names=["three"])

    def test_observability_hooks(self):
        def failing(ctx):
            raise CheckFailure("nope")

        reg = _registry_with(
            ("ok", "invariant", ("quick", "full"), lambda ctx: {}),
            ("nope", "invariant", ("quick", "full"), failing),
        )
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        reg.run("quick", tracer=tracer, metrics=metrics)
        kinds = [(e.cat, e.kind) for e in tracer.events]
        assert ("check", "start") in kinds
        assert ("check", "pass") in kinds
        assert ("check", "fail") in kinds
        assert metrics.counter("check.runs").value == 2
        assert metrics.counter("check.failures").value == 1


class TestReport:
    def test_report_is_schema_valid(self):
        reg = _registry_with(
            ("good", "invariant", ("quick", "full"), lambda ctx: {"x": 1.5}),
            ("bad", "differential", ("quick", "full"),
             lambda ctx: require(False, "broken")),
        )
        results = reg.run("quick", seed=4)
        report = build_report(results, suite="quick", seed=4)
        assert validate_check_report(report) == []
        assert report["passed"] is False
        assert report["counts"] == {"total": 2, "passed": 1, "failed": 1}

    def test_validator_catches_inconsistent_counts(self):
        reg = _registry_with(
            ("good", "invariant", ("quick", "full"), lambda ctx: {}),
        )
        report = build_report(reg.run("quick"), suite="quick", seed=0)
        report["counts"]["failed"] = 5
        assert any("counts.failed" in e for e in validate_check_report(report))

    def test_validator_catches_wrong_verdict(self):
        reg = _registry_with(
            ("good", "invariant", ("quick", "full"), lambda ctx: {}),
        )
        report = build_report(reg.run("quick"), suite="quick", seed=0)
        report["passed"] = False
        assert any("$.passed" in e for e in validate_check_report(report))
