"""Dashboard rendering: the text and HTML reports built from a recorded
trace (span waterfall, phase totals, worker utilization, violation
timeline), plus robustness to traces with no spans at all."""

from repro.obs.dashboard import (
    build_dashboard,
    render_dashboard,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.obs.spans import SpanTracer
from repro.obs.trace import RecordingTracer
from repro.sta.design import random_design


def _traced_run(seed=0):
    tracer = RecordingTracer()
    sim = random_design(seed, clean=True).simulator(tracer=tracer)
    sim.run()           # causal per-tick events
    sim.run_compiled()  # per-phase spans
    return tracer.events


def _multi_worker_events():
    tracer = RecordingTracer()
    spans = SpanTracer(tracer, worker="main")
    with spans.span("run"):
        parent = spans.current_id
        for w in range(2):
            worker = SpanTracer(tracer, worker=f"w{w}", parent_id=parent)
            with worker.span("chunk", t=float(w)):
                with worker.span("trial", t=float(w)):
                    pass
    return tracer.events


class TestBuildDashboard:
    def test_summary_and_spans_present(self):
        dash = build_dashboard(_traced_run())
        assert dash.summary.events > 0
        assert dash.roots  # the compiled.run span tree
        names = {s.name for root in dash.roots for s in root.walk()}
        assert "compiled.run" in names
        assert "compiled.tick_matrix" in names

    def test_phase_rows_aggregate_by_name(self):
        dash = build_dashboard(_traced_run())
        by_name = {name: (calls, total) for name, calls, total in dash.phase_rows}
        assert by_name["compiled.run"][0] == 1
        assert all(total >= 0.0 for _, total in by_name.values())

    def test_worker_rows_for_multi_worker_forest(self):
        dash = build_dashboard(_multi_worker_events())
        workers = {row.worker for row in dash.workers}
        assert workers == {"main", "w0", "w1"}
        for row in dash.workers:
            assert row.busy_s >= 0.0
            assert 0.0 <= row.utilization <= 1.0 + 1e-9

    def test_empty_trace(self):
        dash = build_dashboard([])
        assert dash.roots == []
        text = render_dashboard_text(dash)
        assert "0 events" in text


class TestRenderText:
    def test_sections_present(self):
        text = render_dashboard_text(build_dashboard(_traced_run()))
        assert "events by category" in text
        assert "span waterfall" in text
        assert "violation timeline" in text

    def test_spanless_trace_omits_waterfall(self):
        tracer = RecordingTracer()
        sim = random_design(0, clean=True).simulator(tracer=tracer)
        sim.run()  # scalar path: causal events, no spans
        text = render_dashboard_text(build_dashboard(tracer.events))
        assert "span waterfall" not in text
        assert "events by category" in text

    def test_render_dashboard_convenience(self):
        events = _traced_run()
        assert render_dashboard(events) == render_dashboard_text(
            build_dashboard(events)
        )


class TestRenderHtml:
    def test_self_contained_document(self):
        html = render_dashboard_html(build_dashboard(_traced_run()))
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "<script" not in html  # static: no JS needed to view

    def test_sections_present(self):
        html = render_dashboard_html(build_dashboard(_traced_run()))
        assert "Span waterfall" in html
        assert "Violation timeline" in html
        assert "Events by category" in html

    def test_worker_utilization_section(self):
        html = render_dashboard_html(build_dashboard(_multi_worker_events()))
        assert "Worker utilization" in html
        assert "w0" in html and "w1" in html

    def test_html_escapes_span_names(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("<evil> & co"):
            pass
        html = render_dashboard_html(build_dashboard(tracer.events))
        assert "<evil>" not in html
        assert "&lt;evil&gt;" in html
