"""Shared fixtures: small canonical arrays, models, and clock trees."""

from __future__ import annotations

import pytest

from repro.arrays.topologies import hex_array, linear_array, mesh
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.core.models import DifferenceModel, PhysicalModel, SummationModel


@pytest.fixture
def line8():
    return linear_array(8)


@pytest.fixture
def mesh4():
    return mesh(4, 4)


@pytest.fixture
def hex4():
    return hex_array(4, 4)


@pytest.fixture
def spine8(line8):
    return spine_clock(line8)


@pytest.fixture
def htree4(mesh4):
    return htree_for_array(mesh4)


@pytest.fixture
def diff_model():
    return DifferenceModel(m=1.0)


@pytest.fixture
def sum_model():
    return SummationModel(m=1.0, eps=0.1)


@pytest.fixture
def phys_model():
    return PhysicalModel(m=1.0, eps=0.1)
