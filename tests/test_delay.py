"""Unit tests for delay models, buffers, and variation processes."""

import math
import statistics

import pytest

from repro.delay.buffer import Buffer, InverterPairModel
from repro.delay.variation import (
    BoundedUniformVariation,
    GaussianVariation,
    NoVariation,
)
from repro.delay.wire import ElmoreWireModel, LinearWireModel


class TestLinearWire:
    def test_proportional(self):
        model = LinearWireModel(m=2.0)
        assert model.delay(3.0) == 6.0

    def test_zero_length(self):
        assert LinearWireModel().delay(0.0) == 0.0

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            LinearWireModel().delay(-1.0)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            LinearWireModel(m=0)


class TestElmoreWire:
    def test_quadratic_growth(self):
        model = ElmoreWireModel(r=1.0, c=1.0)
        assert model.delay(4.0) / model.delay(2.0) == pytest.approx(4.0)

    def test_lumped_terms(self):
        model = ElmoreWireModel(r=1.0, c=1.0, driver_resistance=2.0, load_capacitance=3.0)
        length = 2.0
        expected = 0.5 * 4.0 + 2.0 * (2.0 + 3.0) + 2.0 * 3.0
        assert model.delay(length) == pytest.approx(expected)

    def test_buffering_beats_long_unbuffered_wire(self):
        # Core motivation for A7: k segments of length L/k beat one of L.
        model = ElmoreWireModel(r=1.0, c=1.0)
        total = 64.0
        unbuffered = model.delay(total)
        segmented = 8 * model.delay(total / 8)
        assert segmented < unbuffered / 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ElmoreWireModel(r=0)
        with pytest.raises(ValueError):
            ElmoreWireModel(driver_resistance=-1)


class TestBuffer:
    def test_discrepancy_and_means(self):
        buf = Buffer(delay_rise=1.2, delay_fall=0.8)
        assert buf.discrepancy == pytest.approx(0.4)
        assert buf.mean_delay == pytest.approx(1.0)
        assert buf.max_delay == 1.2

    def test_delay_by_polarity(self):
        buf = Buffer(1.5, 0.5)
        assert buf.delay(rising=True) == 1.5
        assert buf.delay(rising=False) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Buffer(0.0, 1.0)


class TestInverterPairModel:
    def test_zero_bias_zero_variance_symmetric(self):
        model = InverterPairModel(nominal=2.0)
        buf = model.sample_stage()
        assert buf.delay_rise == buf.delay_fall == 2.0

    def test_bias_splits_edges(self):
        model = InverterPairModel(nominal=1.0, bias=0.2)
        buf = model.sample_stage()
        assert buf.discrepancy == pytest.approx(0.2)
        assert buf.mean_delay == pytest.approx(1.0)

    def test_string_length(self):
        assert len(InverterPairModel().sample_string(17)) == 17

    def test_noise_statistics(self):
        model = InverterPairModel(nominal=1.0, variance=0.01, seed=5)
        discrepancies = [model.sample_stage().discrepancy for _ in range(4000)]
        assert statistics.fmean(discrepancies) == pytest.approx(0.0, abs=0.01)
        assert statistics.pstdev(discrepancies) == pytest.approx(0.1, rel=0.1)

    def test_deterministic_given_seed(self):
        a = InverterPairModel(variance=0.01, seed=9).sample_string(5)
        b = InverterPairModel(variance=0.01, seed=9).sample_string(5)
        assert [x.delay_rise for x in a] == [x.delay_rise for x in b]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            InverterPairModel(nominal=0)
        with pytest.raises(ValueError):
            InverterPairModel(variance=-1)
        with pytest.raises(ValueError):
            InverterPairModel().sample_string(0)


class TestVariationProcesses:
    def test_no_variation_constant(self):
        proc = NoVariation(m=1.5)
        assert [proc.sample() for _ in range(3)] == [1.5, 1.5, 1.5]

    def test_bounded_uniform_within_bounds(self):
        proc = BoundedUniformVariation(m=1.0, epsilon=0.2, seed=1)
        samples = [proc.sample() for _ in range(500)]
        assert all(0.8 <= s <= 1.2 for s in samples)
        assert statistics.fmean(samples) == pytest.approx(1.0, abs=0.02)

    def test_reset_replays_stream(self):
        proc = BoundedUniformVariation(m=1.0, epsilon=0.3, seed=7)
        first = [proc.sample() for _ in range(10)]
        proc.reset()
        assert [proc.sample() for _ in range(10)] == first

    def test_resample_changes_stream(self):
        proc = BoundedUniformVariation(m=1.0, epsilon=0.3, seed=7)
        first = [proc.sample() for _ in range(10)]
        proc.resample(99)
        assert [proc.sample() for _ in range(10)] != first

    def test_gaussian_floor(self):
        proc = GaussianVariation(m=1.0, sigma=10.0, seed=3, floor=0.5)
        assert all(proc.sample() >= 0.5 for _ in range(200))

    def test_gaussian_statistics(self):
        proc = GaussianVariation(m=2.0, sigma=0.1, seed=4)
        samples = [proc.sample() for _ in range(3000)]
        assert statistics.fmean(samples) == pytest.approx(2.0, abs=0.02)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            NoVariation(m=0)
        with pytest.raises(ValueError):
            BoundedUniformVariation(m=1.0, epsilon=1.5)
        with pytest.raises(ValueError):
            GaussianVariation(sigma=-1)
