"""Unit tests for H-tree construction (Fig. 3, Lemma 1) and the linear
dissection counterexample."""

import pytest

from repro.arrays.topologies import hex_array, linear_array, mesh
from repro.clocktree.htree import (
    dissection_tree_for_linear,
    htree,
    htree_for_array,
    htree_for_grid,
)


class TestHtree:
    def test_leaf_count(self):
        t = htree(4, 4)
        leaves = [n for n in t.leaves() if isinstance(n, tuple) and n[0] == "leaf"]
        assert len(leaves) == 16

    def test_leaves_equidistant(self):
        t = htree(8, 8)
        leaves = [n for n in t.nodes() if isinstance(n, tuple) and n[0] == "leaf"]
        assert t.is_equidistant(leaves)

    def test_leaf_positions_on_grid(self):
        t = htree(2, 4, spacing=1.0)
        assert t.position(("leaf", 1, 3)).x == 3.0
        assert t.position(("leaf", 1, 3)).y == 1.0

    def test_rectangular_power_of_two(self):
        t = htree(2, 8)
        leaves = [n for n in t.nodes() if isinstance(n, tuple) and n[0] == "leaf"]
        assert len(leaves) == 16
        assert t.is_equidistant(leaves)

    def test_single_point(self):
        t = htree(1, 1)
        assert ("leaf", 0, 0) in t

    def test_binary(self):
        t = htree(4, 4)
        t.validate()
        assert t.max_children == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            htree(3, 4)

    def test_spacing_scales_distances(self):
        t1 = htree(4, 4, spacing=1.0)
        t2 = htree(4, 4, spacing=2.0)
        assert t2.longest_root_to_leaf() == pytest.approx(2 * t1.longest_root_to_leaf())

    def test_grid_padding(self):
        t = htree_for_grid(3, 5)
        leaves = [n for n in t.nodes() if isinstance(n, tuple) and n[0] == "leaf"]
        assert len(leaves) == 4 * 8


class TestHtreeForArray:
    def test_all_cells_attached_equidistant(self):
        array = mesh(4, 4)
        t = htree_for_array(array)
        assert t.is_equidistant(array.comm.nodes())

    def test_zero_d_metric_between_all_cells(self):
        array = mesh(4, 4)
        t = htree_for_array(array)
        cells = array.comm.nodes()
        assert all(t.path_difference(a, b) == 0 for a, b in array.communicating_pairs())
        assert t.path_difference(cells[0], cells[-1]) == 0

    def test_hex_array_supported(self):
        array = hex_array(4, 4)
        t = htree_for_array(array)
        assert t.is_equidistant(array.comm.nodes())

    def test_linear_array_supported(self):
        array = linear_array(8)
        t = htree_for_array(array)
        assert t.is_equidistant(array.comm.nodes())

    def test_non_power_of_two_array(self):
        array = mesh(3, 5)
        t = htree_for_array(array)
        assert t.is_equidistant(array.comm.nodes())

    def test_area_within_constant_factor(self):
        # Lemma 1: clock tree wire area <= constant * layout area.
        for n in (4, 8, 16):
            array = mesh(n, n)
            t = htree_for_array(array)
            assert t.total_wire_length() <= 4.0 * array.layout.area

    def test_off_grid_cell_rejected(self):
        array = linear_array(4, spacing=0.7)
        with pytest.raises(ValueError):
            htree_for_array(array, spacing=1.0)


class TestDissectionCounterexample:
    def test_equidistant_for_power_of_two(self):
        array = linear_array(16)
        t = dissection_tree_for_linear(array)
        assert t.is_equidistant(range(16))

    def test_middle_neighbors_have_long_tree_path(self):
        n = 64
        array = linear_array(n)
        t = dissection_tree_for_linear(array)
        mid_s = t.path_length(n // 2 - 1, n // 2)
        assert mid_s >= n / 2  # spans the array

    def test_s_grows_linearly(self):
        values = []
        for n in (16, 32, 64, 128):
            array = linear_array(n)
            t = dissection_tree_for_linear(array)
            values.append(
                max(t.path_length(a, b) for a, b in array.communicating_pairs())
            )
        ratios = [b / a for a, b in zip(values, values[1:])]
        assert all(1.8 <= r <= 2.2 for r in ratios)

    def test_d_metric_stays_zero(self):
        # The scheme is fine under the difference model...
        array = linear_array(32)
        t = dissection_tree_for_linear(array)
        assert all(
            t.path_difference(a, b) == pytest.approx(0.0)
            for a, b in array.communicating_pairs()
        )

    def test_single_cell(self):
        array = linear_array(1)
        t = dissection_tree_for_linear(array)
        assert 0 in t
