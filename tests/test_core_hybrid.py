"""Unit tests for the Section VI hybrid synchronization scheme."""

import pytest

from repro.arrays.topologies import hex_array, linear_array, mesh
from repro.core.hybrid import build_hybrid, partition_into_elements


class TestPartition:
    def test_block_membership(self):
        array = mesh(8, 8)
        elements = partition_into_elements(array, 4.0)
        assert len(elements) == 4
        assert all(len(cells) == 16 for cells in elements.values())

    def test_every_cell_assigned_once(self):
        array = mesh(6, 6)
        elements = partition_into_elements(array, 4.0)
        assigned = [c for cells in elements.values() for c in cells]
        assert sorted(assigned) == sorted(array.comm.nodes())

    def test_element_diameter_bounded(self):
        array = mesh(16, 16)
        elements = partition_into_elements(array, 4.0)
        for cells in elements.values():
            xs = [array.layout[c].x for c in cells]
            ys = [array.layout[c].y for c in cells]
            assert max(xs) - min(xs) < 4.0
            assert max(ys) - min(ys) < 4.0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            partition_into_elements(mesh(4, 4), 0)


class TestBuildHybrid:
    def test_element_graph_connects_neighbors(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        assert scheme.element_graph.node_count == 4
        # 2x2 element grid: 4 adjacencies
        assert len(scheme.element_graph.communicating_pairs()) == 4

    def test_local_trees_cover_members(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        for eid, cells in scheme.elements.items():
            tree = scheme.local_trees[eid]
            assert all(c in tree for c in cells)

    def test_controllers_inside_blocks(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        for eid, ctrl in scheme.controllers.items():
            bx, by = eid
            assert bx * 4.0 <= ctrl.x <= (bx + 1) * 4.0
            assert by * 4.0 <= ctrl.y <= (by + 1) * 4.0

    def test_works_on_hex(self):
        scheme = build_hybrid(hex_array(8, 8), element_size=4.0)
        assert scheme.element_count() == 4

    def test_works_on_linear(self):
        scheme = build_hybrid(linear_array(32), element_size=4.0)
        assert scheme.element_count() == 8
        # chain of elements
        assert len(scheme.element_graph.communicating_pairs()) == 7


class TestCycleTimeModel:
    def test_constant_as_array_grows(self):
        cycles = []
        for n in (8, 16, 32):
            scheme = build_hybrid(mesh(n, n), element_size=4.0)
            cycles.append(scheme.cycle_time(delta=1.0))
        assert max(cycles) == pytest.approx(min(cycles))

    def test_grows_with_element_size(self):
        small = build_hybrid(mesh(16, 16), element_size=2.0).cycle_time(delta=1.0)
        large = build_hybrid(mesh(16, 16), element_size=8.0).cycle_time(delta=1.0)
        assert large > small

    def test_local_distribution_bounded_by_element(self):
        scheme = build_hybrid(mesh(32, 32), element_size=4.0)
        # serpentine local spine through 16 cells: <= ~16 + detours
        assert scheme.max_local_distribution() <= 2 * 16 + 4

    def test_controller_distance_bounded(self):
        scheme = build_hybrid(mesh(32, 32), element_size=4.0)
        assert scheme.max_controller_distance() <= 2 * 4.0

    def test_single_element_has_no_handshake(self):
        scheme = build_hybrid(mesh(4, 4), element_size=8.0)
        assert scheme.max_controller_distance() == 0.0

    def test_largest_element(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        assert scheme.largest_element() == 16

    def test_rejects_bad_cycle_args(self):
        scheme = build_hybrid(mesh(4, 4), element_size=2.0)
        with pytest.raises(ValueError):
            scheme.cycle_time(delta=-1)
        with pytest.raises(ValueError):
            scheme.cycle_time(delta=1, m=0)
