"""CSR adjacency: the O(n) grid build vs the CommGraph lowering.

``grid_csr`` exists so million-cell structure builds never touch a
Python object graph; its contract is exact structural equality with
``csr_from_comm(mesh(rows, cols).comm)`` at every shape.
"""

import numpy as np
import pytest

from repro.arrays.topologies import mesh
from repro.graphs.csr import CSRAdjacency, csr_from_comm, grid_csr


class TestGridCSR:
    @pytest.mark.parametrize(
        "rows,cols", [(1, 1), (1, 5), (5, 1), (2, 2), (3, 4), (7, 5), (9, 9)]
    )
    def test_matches_comm_lowering(self, rows, cols):
        grid = grid_csr(rows, cols)
        lowered = csr_from_comm(mesh(rows, cols).comm)
        assert grid.same_structure(lowered)

    def test_counts(self):
        grid = grid_csr(3, 4)
        assert grid.n_cells == 12
        # 4-neighbourhood, directed: 2 * (rows*(cols-1) + (rows-1)*cols)
        assert grid.n_edges == 2 * (3 * 3 + 2 * 4)

    def test_predecessors_sorted_and_complete(self):
        grid = grid_csr(4, 4)
        lowered = csr_from_comm(mesh(4, 4).comm)
        for i in range(grid.n_cells):
            mine = list(grid.predecessors(i))
            assert mine == sorted(mine)
            assert mine == list(lowered.predecessors(i))

    def test_indptr_monotone_and_bounded(self):
        grid = grid_csr(6, 3)
        assert grid.indptr[0] == 0
        assert grid.indptr[-1] == grid.n_edges
        assert np.all(np.diff(grid.indptr) >= 0)
        assert np.all(grid.indices >= 0)
        assert np.all(grid.indices < grid.n_cells)

    def test_same_structure_rejects_different_shapes(self):
        assert not grid_csr(3, 4).same_structure(grid_csr(4, 3))
        assert not grid_csr(3, 3).same_structure(grid_csr(3, 4))

    def test_large_build_is_fast_enough_to_run_in_tests(self):
        # 65,536 cells: the scale row's structure — must be instant.
        grid = grid_csr(256, 256)
        assert grid.n_cells == 65_536
        assert grid.n_edges == 2 * 2 * 256 * 255


class TestCSRFromComm:
    def test_explicit_cell_order_respected(self):
        comm = mesh(2, 3).comm
        cells = list(reversed(comm.nodes()))
        csr = csr_from_comm(comm, cells=cells)
        assert csr.n_cells == 6
        # Node order defines dense ids; structure must be internally valid.
        assert csr.indptr[-1] == csr.n_edges

    def test_nodes_round_trip(self):
        comm = mesh(3, 3).comm
        csr = csr_from_comm(comm)
        assert csr.nodes is not None
        assert list(csr.nodes) == list(comm.nodes())

    def test_is_csr_adjacency(self):
        assert isinstance(grid_csr(2, 2), CSRAdjacency)
