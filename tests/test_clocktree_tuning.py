"""Tests for delay tuning (the difference model's tunable-wire premise)."""

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.builders import kdtree_clock, serpentine_clock
from repro.clocktree.spine import spine_clock
from repro.clocktree.tuning import tune_to_equidistant
from repro.core.models import DifferenceModel, SummationModel, max_skew_bound


class TestTuning:
    def test_makes_any_tree_equidistant(self):
        array = mesh(5, 5)
        for builder in (kdtree_clock, serpentine_clock):
            tree = builder(array)
            tuned, _added = tune_to_equidistant(tree, array.comm.nodes())
            assert tuned.is_equidistant(array.comm.nodes(), tolerance=1e-9)

    def test_difference_model_sigma_drops_to_zero(self):
        array = mesh(4, 4)
        tree = serpentine_clock(array)
        model = DifferenceModel(m=1.0)
        before = max_skew_bound(tree, array.communicating_pairs(), model)
        tuned, _ = tune_to_equidistant(tree, array.comm.nodes())
        after = max_skew_bound(tuned, array.communicating_pairs(), model)
        assert before > 0
        assert after == pytest.approx(0.0)

    def test_summation_sigma_does_not_improve(self):
        """Tuning only lengthens wires: every s stays or grows."""
        array = mesh(4, 4)
        tree = kdtree_clock(array)
        model = SummationModel(m=1.0, eps=0.1)
        before = max_skew_bound(tree, array.communicating_pairs(), model)
        tuned, _ = tune_to_equidistant(tree, array.comm.nodes())
        after = max_skew_bound(tuned, array.communicating_pairs(), model)
        assert after >= before - 1e-9

    def test_pairwise_s_never_shrinks(self):
        array = linear_array(16)
        tree = spine_clock(array)
        tuned, _ = tune_to_equidistant(tree, array.comm.nodes())
        for a, b in array.communicating_pairs():
            assert tuned.path_length(a, b) >= tree.path_length(a, b) - 1e-9

    def test_added_wire_reported(self):
        array = linear_array(8)
        tree = spine_clock(array)
        tuned, added = tune_to_equidistant(tree, array.comm.nodes())
        assert added == pytest.approx(
            sum(
                max(tree.root_distance(c) for c in range(8)) - tree.root_distance(c)
                for c in range(8)
            )
        )
        assert tuned.total_wire_length() == pytest.approx(
            tree.total_wire_length() + added
        )

    def test_custom_target(self):
        array = linear_array(4)
        tree = spine_clock(array)
        tuned, _ = tune_to_equidistant(tree, array.comm.nodes(), target=100.0)
        assert all(
            tuned.root_distance(c) == pytest.approx(100.0) for c in range(4)
        )

    def test_target_below_farthest_rejected(self):
        array = linear_array(4)
        tree = spine_clock(array)
        with pytest.raises(ValueError):
            tune_to_equidistant(tree, array.comm.nodes(), target=0.5)

    def test_structure_preserved(self):
        array = mesh(3, 3)
        tree = kdtree_clock(array)
        tuned, _ = tune_to_equidistant(tree, array.comm.nodes())
        assert set(tuned.nodes()) == set(tree.nodes())
        for node in tree.nodes():
            assert tuned.children(node) == tree.children(node)

    def test_non_leaf_cell_rejected(self):
        from repro.arrays.topologies import complete_binary_tree
        from repro.clocktree.builders import comm_tree_clock

        array = complete_binary_tree(2)
        tree = comm_tree_clock(array)  # cells are internal nodes here
        with pytest.raises(ValueError):
            tune_to_equidistant(tree, array.comm.nodes())

    def test_unknown_cell_rejected(self):
        array = linear_array(4)
        tree = spine_clock(array)
        with pytest.raises(KeyError):
            tune_to_equidistant(tree, ["nope"])


class TestTargetBoundary:
    """A target within the 1e-12 validation tolerance below the farthest
    cell must not produce negative padding (shortened wires)."""

    def test_target_just_below_farthest_clamps_to_zero(self):
        array = mesh(4, 4)
        tree = serpentine_clock(array)
        cells = array.comm.nodes()
        farthest = max(tree.root_distance(c) for c in cells)
        tuned, added = tune_to_equidistant(tree, cells, target=farthest - 1e-13)
        assert added >= 0.0
        for node in tree.nodes():
            if node == tree.root:
                continue
            assert tuned.edge_length(node) >= tree.edge_length(node) - 0.0

    def test_equidistant_tree_zero_added_at_boundary_target(self):
        """On an already-equidistant tree every per-cell padding would go
        negative at a boundary target; the clamp keeps the tree identical."""
        from repro.clocktree.htree import htree_for_array

        array = mesh(4, 4)
        tree = htree_for_array(array)
        cells = array.comm.nodes()
        farthest = max(tree.root_distance(c) for c in cells)
        tuned, added = tune_to_equidistant(tree, cells, target=farthest - 1e-13)
        assert added == 0.0
        assert tuned.total_wire_length() == pytest.approx(tree.total_wire_length())
        for c in cells:
            assert tuned.root_distance(c) == pytest.approx(tree.root_distance(c))
