"""Unit tests for generic clock tree builders (comparison schemes)."""

import pytest

from repro.arrays.topologies import complete_binary_tree, linear_array, mesh
from repro.clocktree.builders import (
    comm_tree_clock,
    kdtree_clock,
    serpentine_clock,
    star_clock,
)


class TestSerpentine:
    def test_covers_all_cells(self):
        array = mesh(4, 5)
        t = serpentine_clock(array)
        assert all(c in t for c in array.comm.nodes())

    def test_horizontal_neighbors_close(self):
        array = mesh(4, 4)
        t = serpentine_clock(array)
        assert t.path_length((0, 0), (0, 1)) == pytest.approx(1.0)

    def test_vertical_neighbors_far(self):
        # The snake makes vertical neighbors ~2*cols apart on the trunk.
        array = mesh(4, 8)
        t = serpentine_clock(array)
        assert t.path_length((0, 0), (1, 0)) > 8.0

    def test_binary(self):
        serpentine_clock(mesh(3, 3)).validate()

    def test_on_linear_array_equals_spine_behaviour(self):
        array = linear_array(16)
        t = serpentine_clock(array)
        max_s = max(t.path_length(a, b) for a, b in array.communicating_pairs())
        assert max_s == pytest.approx(1.0)


class TestKdTree:
    def test_covers_all_cells(self):
        array = mesh(5, 3)
        t = kdtree_clock(array)
        assert all(c in t for c in array.comm.nodes())
        t.validate()

    def test_is_binary(self):
        t = kdtree_clock(mesh(4, 4))
        assert all(len(t.children(n)) <= 2 for n in t.nodes())

    def test_balanced_depth(self):
        array = mesh(8, 8)
        t = kdtree_clock(array)
        depths = [t.depth(c) for c in array.comm.nodes()]
        assert max(depths) <= 2 * 7  # ~log2(64)=6 splits, generous bound

    def test_mesh_neighbor_skew_grows(self):
        # No binary hierarchical scheme escapes the lower bound; check the
        # max communicating s grows with mesh size.
        s_small = _max_pair_s(kdtree_clock(mesh(4, 4)), mesh(4, 4))
        s_large = _max_pair_s(kdtree_clock(mesh(16, 16)), mesh(16, 16))
        assert s_large > 2 * s_small

    def test_single_cell(self):
        array = linear_array(1)
        t = kdtree_clock(array)
        assert 0 in t


class TestStar:
    def test_all_cells_direct_children(self):
        array = mesh(3, 3)
        t = star_clock(array)
        assert all(t.depth(c) == 1 for c in array.comm.nodes())

    def test_s_metric_small(self):
        array = mesh(8, 8)
        t = star_clock(array)
        # Each pair's s is at most twice the layout radius.
        assert _max_pair_s(t, array) <= 2 * (7 + 7)

    def test_total_wire_length_is_large(self):
        # The physical price A6 charges: total wiring Theta(n * diameter).
        small = star_clock(mesh(4, 4)).total_wire_length()
        large = star_clock(mesh(8, 8)).total_wire_length()
        assert large > 4 * small


class TestCommTreeClock:
    def test_follows_data_paths(self):
        array = complete_binary_tree(3)
        t = comm_tree_clock(array)
        for a, b in array.communicating_pairs():
            assert t.path_length(a, b) == pytest.approx(array.layout.distance(a, b))

    def test_root_defaults_to_host(self):
        array = complete_binary_tree(2)
        t = comm_tree_clock(array)
        assert t.root == (0, 0)

    def test_custom_root(self):
        array = complete_binary_tree(2)
        t = comm_tree_clock(array, root=(1, 0))
        assert t.root == (1, 0)
        assert all(c in t for c in array.comm.nodes())

    def test_rejects_non_tree(self):
        with pytest.raises(ValueError):
            comm_tree_clock(mesh(3, 3))

    def test_works_on_linear(self):
        array = linear_array(8)
        t = comm_tree_clock(array)
        max_s = max(t.path_length(a, b) for a, b in array.communicating_pairs())
        assert max_s == pytest.approx(1.0)


def _max_pair_s(tree, array):
    return max(tree.path_length(a, b) for a, b in array.communicating_pairs())
