"""Property-based tests (hypothesis) for the compiled simulation kernels.

The compiled kernels in :mod:`repro.sim.compiled` promise *identity*,
not approximation: the array-backed clocked kernel must produce the
same ``ClockedRunResult`` — payloads, violation list (contents and
order), tick count, makespan — as the scalar event-driven oracle for
every program/schedule pair, and the recurrence kernel must reproduce
the scalar tandem recurrence exactly.  These tests sweep random
programs, skewed/jittered schedules, and period regimes (from badly
overdriven to comfortably safe) to exercise both the clean stream path
and the violation replay path, plus the ``CompiledTrialContext``
Monte-Carlo cache under serial and threaded execution.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import CompiledTrialContext, run_trials
from repro.arrays.systolic import (
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.dataflow import (
    SelfTimedProgramSimulator,
    constant_service,
    hashed_service,
)
from repro.sim.faults import JitteredSchedule


# ----------------------------------------------------------------------
# random program / schedule strategies
# ----------------------------------------------------------------------
@st.composite
def random_programs(draw):
    """A random systolic program over random (finite) float payloads."""
    rng = random.Random(draw(st.integers(0, 2**30)))
    kind = draw(st.sampled_from(["fir", "matvec", "sorter", "matmul"]))

    def val():
        return round(rng.uniform(-4.0, 4.0), 3)

    if kind == "fir":
        taps = [val() for _ in range(rng.randint(1, 4))]
        xs = [val() for _ in range(rng.randint(2, 8))]
        return build_fir_array(taps, xs)
    if kind == "matvec":
        n = rng.randint(1, 4)
        a = [[val() for _ in range(n)] for _ in range(n)]
        x = [val() for _ in range(n)]
        return build_matvec_array(a, x)
    if kind == "sorter":
        keys = [val() for _ in range(rng.randint(2, 8))]
        return build_odd_even_sorter(keys)
    n = rng.randint(1, 3)
    a = [[val() for _ in range(n)] for _ in range(n)]
    b = [[val() for _ in range(n)] for _ in range(n)]
    return build_mesh_matmul(a, b)


@st.composite
def clocked_cases(draw):
    """A program plus a schedule spanning overdriven-to-safe regimes."""
    program = draw(random_programs())
    rng = random.Random(draw(st.integers(0, 2**30)))
    cells = program.array.comm.nodes()
    # Random per-cell offsets model an arbitrarily skewed distribution
    # tree; small periods overdrive the array and force violations.
    offsets = {c: rng.uniform(0.0, 4.0) for c in cells}
    period = rng.uniform(0.5, 12.0)
    schedule = ClockSchedule(offsets, period=period)
    if rng.random() < 0.5:
        schedule = JitteredSchedule(
            schedule,
            amplitude=rng.uniform(0.0, 0.45) * period,
            seed=rng.randint(0, 2**20),
        )
    delta = rng.uniform(0.1, 2.0)
    padding = None
    if rng.random() < 0.5:
        padding = {
            e: rng.uniform(0.0, 3.0) for e in program.array.comm.edges()
        }
    return program, schedule, delta, padding


@given(clocked_cases())
@settings(max_examples=60, deadline=None)
def test_compiled_clocked_equals_scalar(case):
    program, schedule, delta, padding = case
    sim = ClockedArraySimulator(
        program, schedule, delta=delta, edge_padding=padding
    )
    compiled = sim.run()
    scalar = sim.run_scalar()
    assert repr(compiled.result) == repr(scalar.result)
    assert compiled.violations == scalar.violations
    assert compiled.ticks == scalar.ticks
    assert compiled.makespan == scalar.makespan


@given(random_programs(), st.data())
@settings(max_examples=40, deadline=None)
def test_compiled_recurrence_equals_scalar(program, data):
    rng = random.Random(data.draw(st.integers(0, 2**30)))
    service = rng.choice(
        [
            None,
            constant_service(rng.uniform(0.25, 3.0)),
            hashed_service(0.5, 2.5, 0.4, seed=rng.randint(0, 2**20)),
        ]
    )
    sim = SelfTimedProgramSimulator(
        program, service=service, wire_delay=rng.uniform(0.0, 2.0)
    )
    waves = rng.choice([None, rng.randint(1, 9)])
    assert sim.recurrence_makespan(waves) == (
        sim.recurrence_makespan_scalar(waves)
    )


# ----------------------------------------------------------------------
# Monte-Carlo cache
# ----------------------------------------------------------------------
def _build_structure():
    return list(range(8))


@given(st.integers(0, 2**20), st.integers(4, 16))
@settings(max_examples=25, deadline=None)
def test_run_trials_identical_with_and_without_cache(base_seed, n_trials):
    def uncached(seed):
        table = _build_structure()
        rng = random.Random(seed)
        return table[rng.randrange(len(table))] + rng.random()

    ctx = CompiledTrialContext(_build_structure)

    def cached(seed):
        table = ctx.get()
        rng = random.Random(seed)
        return table[rng.randrange(len(table))] + rng.random()

    for workers in (None, 2):
        a = run_trials(uncached, n_trials, base_seed=base_seed, workers=workers)
        b = run_trials(cached, n_trials, base_seed=base_seed, workers=workers)
        assert a == b
