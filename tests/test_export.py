"""Metrics exposition: labeled series, schema-valid JSON snapshots,
snapshot deltas, and the Prometheus text rendering."""

import json

from repro.obs.export import (
    metrics_snapshot,
    render_prometheus,
    snapshot_delta,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_metrics_snapshot


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("events").inc(2)
    registry.counter("trials", labels={"phase": "run"}).inc(5)
    registry.gauge("queue_depth").set(3.0)
    registry.histogram("wall_s", edges=(0.1, 1.0)).observe(0.5)
    return registry


class TestLabeledSeries:
    def test_unlabelled_keys_are_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(2)
        assert registry.to_dict()["counters"] == {"events": 2}

    def test_labelled_key_is_name_brace_sorted_pairs(self):
        registry = MetricsRegistry()
        registry.counter("t", labels={"b": "2", "a": "1"}).inc()
        assert list(registry.to_dict()["counters"]) == ['t{a="1",b="2"}']

    def test_same_labels_reuse_the_instrument(self):
        registry = MetricsRegistry()
        registry.counter("t", labels={"p": "x"}).inc()
        registry.counter("t", labels={"p": "x"}).inc()
        registry.counter("t", labels={"p": "y"}).inc()
        counters = registry.to_dict()["counters"]
        assert counters['t{p="x"}'] == 2
        assert counters['t{p="y"}'] == 1


class TestSnapshot:
    def test_snapshot_is_schema_valid(self):
        snapshot = metrics_snapshot(_populated_registry())
        assert validate_metrics_snapshot(snapshot) == []
        assert snapshot["counters"]["events"] == 2
        assert "emitted_at" in snapshot["meta"]

    def test_snapshot_delta_reports_increments(self):
        registry = _populated_registry()
        before = metrics_snapshot(registry)
        registry.counter("events").inc(3)
        registry.histogram("wall_s", edges=(0.1, 1.0)).observe(2.0)
        after = metrics_snapshot(registry)
        delta = snapshot_delta(before, after)
        assert delta["counters"]["events"] == 3
        assert "trials" not in str(delta["counters"])  # unchanged series omitted
        assert delta["histograms"]["wall_s"]["new_total"] == 1
        assert sum(delta["histograms"]["wall_s"]["counts"]) == 1

    def test_write_json_round_trips(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        written = write_metrics_json(_populated_registry(), path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == written
        assert validate_metrics_snapshot(loaded) == []


class TestPrometheus:
    def test_counter_rendering(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE repro_events counter" in text
        assert "repro_events_total 2" in text
        assert 'repro_trials_total{phase="run"} 5' in text

    def test_gauge_min_max(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(1.0)
        g.set(9.0)
        text = render_prometheus(registry)
        assert "repro_depth 9.0" in text
        assert "repro_depth_min 1.0" in text
        assert "repro_depth_max 9.0" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", edges=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = render_prometheus(registry)
        assert 'repro_lat_bucket{le="1.0"} 1' in text
        assert 'repro_lat_bucket{le="2.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("sta.cache_hits").inc()
        text = render_prometheus(registry)
        assert "repro_sta_cache_hits_total 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"k": 'va"l\\ue'}).inc()
        text = render_prometheus(registry)
        assert 'k="va\\"l\\\\ue"' in text

    def test_write_prometheus(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        text = write_metrics_prometheus(_populated_registry(), path)
        with open(path) as fh:
            assert fh.read() == text
