"""Unit tests for topology generators (the arrays of Figs. 3-6)."""

import pytest

from repro.arrays.topologies import (
    complete_binary_tree,
    hex_array,
    linear_array,
    mesh,
    ring,
    torus,
)


class TestLinear:
    def test_size_and_edges(self):
        a = linear_array(5)
        assert a.size == 5
        assert len(a.communicating_pairs()) == 4

    def test_layout_is_a_row(self):
        a = linear_array(4, spacing=2.0)
        assert a.layout[3].x == 6.0
        assert all(a.layout[i].y == 0.0 for i in range(4))

    def test_unidirectional(self):
        a = linear_array(4, bidirectional=False)
        assert a.comm.has_edge(0, 1)
        assert not a.comm.has_edge(1, 0)
        assert len(a.communicating_pairs()) == 3

    def test_host_is_first_cell(self):
        assert linear_array(3).host == 0

    def test_validates(self):
        linear_array(10).validate()

    def test_max_communication_distance_is_spacing(self):
        assert linear_array(10, spacing=1.5).max_communication_distance() == 1.5

    def test_single_cell(self):
        assert linear_array(1).size == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            linear_array(0)
        with pytest.raises(ValueError):
            linear_array(4, spacing=0)


class TestRing:
    def test_ring_closes(self):
        a = ring(6)
        assert len(a.communicating_pairs()) == 6
        assert frozenset({5, 0}) in {frozenset(p) for p in a.communicating_pairs()}

    def test_folded_layout_keeps_neighbors_close(self):
        a = ring(10)
        assert a.max_communication_distance() <= 2.0

    def test_odd_ring(self):
        a = ring(7)
        a.validate()
        assert a.size == 7

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ring(2)


class TestMesh:
    def test_size_and_edges(self):
        a = mesh(3, 4)
        assert a.size == 12
        # horizontal: 3*3, vertical: 2*4
        assert len(a.communicating_pairs()) == 9 + 8

    def test_layout_positions(self):
        a = mesh(2, 3)
        assert a.layout[(1, 2)].x == 2.0 and a.layout[(1, 2)].y == 1.0

    def test_interior_degree(self):
        a = mesh(5, 5)
        assert a.comm.degree((2, 2)) == 4
        assert a.comm.degree((0, 0)) == 2

    def test_validates(self):
        mesh(4, 4).validate()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mesh(0, 3)


class TestTorus:
    def test_wraparound_edges(self):
        a = torus(4, 4)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        assert frozenset({(0, 0), (0, 3)}) in pairs
        assert frozenset({(0, 0), (3, 0)}) in pairs

    def test_edge_count(self):
        a = torus(4, 5)
        assert len(a.communicating_pairs()) == 2 * 4 * 5  # 2N pairs on a torus

    def test_all_degree_four(self):
        a = torus(3, 3)
        assert all(a.comm.degree(c) == 4 for c in a.comm.nodes())

    def test_wrap_edges_are_long_in_layout(self):
        a = torus(6, 6)
        assert a.max_communication_distance() == 5.0

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            torus(2, 5)


class TestHex:
    def test_diagonal_edges_present(self):
        a = hex_array(3, 3)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        assert frozenset({(0, 0), (1, 1)}) in pairs

    def test_interior_degree_six(self):
        a = hex_array(4, 4)
        assert a.comm.degree((1, 1)) == 6

    def test_edge_count(self):
        a = hex_array(3, 3)
        # mesh edges 12 + diagonals 4
        assert len(a.communicating_pairs()) == 16

    def test_validates(self):
        hex_array(3, 5).validate()


class TestBinaryTree:
    def test_node_count(self):
        a = complete_binary_tree(3)
        assert a.size == 15

    def test_edges(self):
        a = complete_binary_tree(3)
        assert len(a.communicating_pairs()) == 14

    def test_leaves_on_bottom_row(self):
        a = complete_binary_tree(3)
        assert all(a.layout[(3, i)].y == 0.0 for i in range(8))

    def test_root_centered_over_leaves(self):
        a = complete_binary_tree(2)
        assert a.layout[(0, 0)].x == 2.0

    def test_depth_zero(self):
        a = complete_binary_tree(0)
        assert a.size == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            complete_binary_tree(-1)
