"""Unit tests for the rectangle-to-square folding embedding (Theorem 2's
aspect-ratio normalization)."""

import pytest

from repro.geometry.embedding import embed_rectangle_in_square


class TestEmbedding:
    def test_all_cells_placed_uniquely(self):
        layout, _stats = embed_rectangle_in_square(3, 24)
        assert len(layout) == 72
        assert len({layout[c] for c in layout.cells()}) == 72

    def test_bounded_aspect_ratio(self):
        for rows, cols in [(1, 64), (2, 50), (4, 100), (3, 27)]:
            _layout, stats = embed_rectangle_in_square(rows, cols)
            assert stats["aspect_ratio"] <= 4.0, (rows, cols, stats)

    def test_constant_area_factor(self):
        for rows, cols in [(1, 64), (2, 128), (4, 256)]:
            _layout, stats = embed_rectangle_in_square(rows, cols)
            assert stats["area_factor"] <= 4.0

    def test_one_dimensional_stretch_is_constant(self):
        # rows = 1: folding a line gives stretch <= 2 regardless of length.
        for cols in (16, 64, 256, 1024):
            _layout, stats = embed_rectangle_in_square(1, cols)
            assert stats["max_edge_stretch"] <= 2.0

    def test_stretch_bounded_by_rows(self):
        for rows, cols in [(2, 40), (3, 48), (4, 64)]:
            _layout, stats = embed_rectangle_in_square(rows, cols)
            assert stats["max_edge_stretch"] <= rows + 1

    def test_transposed_input(self):
        layout, stats = embed_rectangle_in_square(24, 3)
        assert len(layout) == 72
        assert stats["aspect_ratio"] <= 4.0
        # keys keep original (r, c) orientation
        assert (23, 2) in layout

    def test_already_square_is_identityish(self):
        layout, stats = embed_rectangle_in_square(4, 4)
        assert stats["max_edge_stretch"] == 1.0
        assert stats["aspect_ratio"] == 1.0

    def test_well_spaced(self):
        layout, _stats = embed_rectangle_in_square(2, 30)
        assert layout.is_well_spaced()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            embed_rectangle_in_square(0, 5)
