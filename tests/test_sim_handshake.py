"""Tests for the signal-level handshake pipeline."""

import pytest

from repro.sim.handshake import run_credit_pipeline, run_handshake_pipeline
from repro.sim.selftimed import simulate_selftimed_line, two_point_sampler


class TestProtocol:
    def test_all_items_delivered_in_order(self):
        result = run_handshake_pipeline(5, 20, lambda rng: 1.0)
        assert result.items == 20
        assert result.arrival_times == sorted(result.arrival_times)

    def test_deterministic_cycle_is_compute_plus_roundtrip(self):
        """The handshake tax: cycle = compute + 2 * wire, exactly."""
        for wire in (0.0, 0.1, 0.5):
            result = run_handshake_pipeline(6, 40, lambda rng: 1.0, wire_delay=wire)
            assert result.steady_cycle_time == pytest.approx(1.0 + 2 * wire, rel=0.02)

    def test_cycle_independent_of_pipeline_length(self):
        """The self-timed advantage the paper grants: communication time is
        independent of array size."""
        short = run_handshake_pipeline(2, 40, lambda rng: 1.0, wire_delay=0.2)
        long = run_handshake_pipeline(64, 40, lambda rng: 1.0, wire_delay=0.2)
        assert long.steady_cycle_time == pytest.approx(short.steady_cycle_time, rel=0.05)

    def test_latency_grows_with_length(self):
        short = run_handshake_pipeline(4, 5, lambda rng: 1.0, wire_delay=0.2)
        long = run_handshake_pipeline(32, 5, lambda rng: 1.0, wire_delay=0.2)
        assert long.completion_time > short.completion_time + 20

    def test_slowest_stage_sets_throughput(self):
        counter = {"i": 0}

        def stage_dependent(rng):
            # The sampler is shared across stages; emulate one slow stage by
            # making every 6th computation slow (stage count = 6 makes that
            # effectively one stage in steady state is slow half the time) —
            # instead, simpler: heavy-tailed services raise the cycle.
            return 1.0

        base = run_handshake_pipeline(6, 60, stage_dependent, wire_delay=0.1)
        bursty = run_handshake_pipeline(
            6, 60, two_point_sampler(1.0, 3.0, 0.3), wire_delay=0.1, seed=4
        )
        assert bursty.steady_cycle_time > base.steady_cycle_time

    def test_reproducible(self):
        sampler = two_point_sampler(1.0, 2.0, 0.2)
        a = run_handshake_pipeline(8, 30, sampler, seed=5)
        b = run_handshake_pipeline(8, 30, sampler, seed=5)
        assert a.arrival_times == b.arrival_times

    def test_event_counts_are_linear_in_work(self):
        small = run_handshake_pipeline(4, 10, lambda rng: 1.0)
        big = run_handshake_pipeline(4, 40, lambda rng: 1.0)
        assert big.events_processed < 5 * small.events_processed

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_handshake_pipeline(0, 5, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_handshake_pipeline(4, 0, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_handshake_pipeline(4, 5, lambda rng: 1.0, wire_delay=-1)


class TestBufferedStages:
    def test_skid_buffer_hides_the_round_trip(self):
        """The zipcpu-style law: cycle drops from compute + 2 * wire to
        max(compute, 2 * wire)."""
        for wire in (0.1, 0.3):
            buffered = run_handshake_pipeline(
                6, 60, lambda rng: 1.0, wire_delay=wire, buffered=True
            )
            assert buffered.steady_cycle_time == pytest.approx(
                max(1.0, 2 * wire), rel=0.02
            )

    def test_wire_dominated_regime(self):
        buffered = run_handshake_pipeline(
            6, 60, lambda rng: 1.0, wire_delay=0.8, buffered=True
        )
        assert buffered.steady_cycle_time == pytest.approx(1.6, rel=0.02)

    def test_buffered_never_slower_than_unbuffered(self):
        sampler = two_point_sampler(1.0, 3.0, 0.3)
        plain = run_handshake_pipeline(6, 60, sampler, wire_delay=0.2, seed=2)
        buffered = run_handshake_pipeline(
            6, 60, sampler, wire_delay=0.2, seed=2, buffered=True
        )
        assert (
            buffered.completion_time <= plain.completion_time + 1e-9
        )

    def test_order_preserved(self):
        result = run_handshake_pipeline(
            5, 30, two_point_sampler(0.5, 2.0, 0.4), buffered=True, seed=3
        )
        assert result.arrival_times == sorted(result.arrival_times)


class TestCreditPipeline:
    def test_credit_cycle_law(self):
        """Steady cycle = max(compute, 2 * wire / credits)."""
        for wire, credits, expected in [
            (1.0, 1, 2.0),
            (1.0, 2, 1.0),
            (1.5, 1, 3.0),
            (1.5, 3, 1.0),
            (0.1, 1, 1.0),
        ]:
            result = run_credit_pipeline(
                4, 80, lambda rng: 1.0, wire_delay=wire, credits=credits
            )
            assert result.steady_cycle_time == pytest.approx(
                expected, rel=0.02
            )

    def test_more_credits_never_slower(self):
        sampler = two_point_sampler(1.0, 2.5, 0.3)
        times = [
            run_credit_pipeline(
                5, 50, sampler, wire_delay=0.8, credits=c, seed=6
            ).completion_time
            for c in (1, 2, 4)
        ]
        assert times[0] >= times[1] - 1e-9
        assert times[1] >= times[2] - 1e-9

    def test_order_preserved_and_reproducible(self):
        sampler = two_point_sampler(1.0, 2.0, 0.2)
        a = run_credit_pipeline(6, 30, sampler, credits=2, seed=5)
        b = run_credit_pipeline(6, 30, sampler, credits=2, seed=5)
        assert a.arrival_times == b.arrival_times
        assert a.arrival_times == sorted(a.arrival_times)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_credit_pipeline(0, 5, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_credit_pipeline(4, 0, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_credit_pipeline(4, 5, lambda rng: 1.0, wire_delay=-1)
        with pytest.raises(ValueError):
            run_credit_pipeline(4, 5, lambda rng: 1.0, credits=0)


class TestDegenerateRuns:
    def test_single_item_single_stage(self):
        result = run_handshake_pipeline(1, 1, lambda rng: 1.0, wire_delay=0.1)
        assert result.completion_time == pytest.approx(1.2)
        assert result.steady_cycle_time == result.completion_time

    def test_single_item_many_stages(self):
        result = run_handshake_pipeline(5, 1, lambda rng: 1.0, wire_delay=0.1)
        # One arrival: latency stands in for the cycle, never a division
        # by zero intervals.
        assert result.steady_cycle_time == result.completion_time
        assert result.completion_time == pytest.approx(5 * 1.1 + 0.1)

    def test_two_and_three_items_use_whole_run_gap(self):
        for items in (2, 3):
            result = run_handshake_pipeline(
                3, items, lambda rng: 1.0, wire_delay=0.1
            )
            expected = (
                result.arrival_times[-1] - result.arrival_times[0]
            ) / (items - 1)
            assert result.steady_cycle_time == pytest.approx(expected)

    def test_degenerate_credit_and_buffered(self):
        for kwargs in ({"buffered": True}, {}):
            r = run_handshake_pipeline(1, 1, lambda rng: 1.0, **kwargs)
            assert r.steady_cycle_time == r.completion_time
        r = run_credit_pipeline(1, 1, lambda rng: 1.0, credits=1)
        assert r.steady_cycle_time == r.completion_time


class TestZeroWireDelay:
    """Pinning tests for the ``_Source._try_send``/``on_ack`` re-entrancy
    audit: at zero wire delay every signal still traverses the event
    queue, so the protocol assertion in ``_Stage.on_req`` (double send)
    never trips and event order stays deterministic."""

    def test_zero_wire_all_disciplines_deliver_in_order(self):
        for kwargs in ({}, {"buffered": True}):
            result = run_handshake_pipeline(
                6, 40, lambda rng: 1.0, wire_delay=0.0, **kwargs
            )
            assert result.items == 40
            assert result.arrival_times == sorted(result.arrival_times)
        credit = run_credit_pipeline(
            6, 40, lambda rng: 1.0, wire_delay=0.0, credits=2
        )
        assert credit.items == 40
        assert credit.arrival_times == sorted(credit.arrival_times)

    def test_zero_wire_zero_compute_is_well_defined(self):
        # Every event lands at t=0; only the FIFO tie-break orders them.
        result = run_handshake_pipeline(4, 20, lambda rng: 0.0, wire_delay=0.0)
        assert result.items == 20
        assert result.completion_time == 0.0

    def test_zero_wire_deterministic(self):
        sampler = two_point_sampler(1.0, 2.0, 0.5)
        a = run_handshake_pipeline(8, 30, sampler, wire_delay=0.0, seed=7)
        b = run_handshake_pipeline(8, 30, sampler, wire_delay=0.0, seed=7)
        assert a.arrival_times == b.arrival_times
        assert a.events_processed == b.events_processed


class TestAgreementWithRecurrence:
    def test_matches_blocking_recurrence_shape(self):
        """The signal-level protocol and the blocking tandem recurrence
        agree on the qualitative law: cycle grows with worst-case incidence
        and saturates with array length."""
        sampler = two_point_sampler(1.0, 2.0, 0.05)
        protocol_cycles = []
        recurrence_cycles = []
        for k in (8, 32):
            protocol_cycles.append(
                run_handshake_pipeline(k, 150, sampler, wire_delay=0.0, seed=9).steady_cycle_time
            )
            recurrence_cycles.append(
                simulate_selftimed_line(k, 150, sampler, seed=9, blocking=True).mean_cycle_time
            )
        assert protocol_cycles[1] >= protocol_cycles[0] - 0.02
        assert recurrence_cycles[1] >= recurrence_cycles[0] - 0.02
        for p, r in zip(protocol_cycles, recurrence_cycles):
            assert p == pytest.approx(r, rel=0.25)
