"""Tests for the signal-level handshake pipeline."""

import pytest

from repro.sim.handshake import run_handshake_pipeline
from repro.sim.selftimed import simulate_selftimed_line, two_point_sampler


class TestProtocol:
    def test_all_items_delivered_in_order(self):
        result = run_handshake_pipeline(5, 20, lambda rng: 1.0)
        assert result.items == 20
        assert result.arrival_times == sorted(result.arrival_times)

    def test_deterministic_cycle_is_compute_plus_roundtrip(self):
        """The handshake tax: cycle = compute + 2 * wire, exactly."""
        for wire in (0.0, 0.1, 0.5):
            result = run_handshake_pipeline(6, 40, lambda rng: 1.0, wire_delay=wire)
            assert result.steady_cycle_time == pytest.approx(1.0 + 2 * wire, rel=0.02)

    def test_cycle_independent_of_pipeline_length(self):
        """The self-timed advantage the paper grants: communication time is
        independent of array size."""
        short = run_handshake_pipeline(2, 40, lambda rng: 1.0, wire_delay=0.2)
        long = run_handshake_pipeline(64, 40, lambda rng: 1.0, wire_delay=0.2)
        assert long.steady_cycle_time == pytest.approx(short.steady_cycle_time, rel=0.05)

    def test_latency_grows_with_length(self):
        short = run_handshake_pipeline(4, 5, lambda rng: 1.0, wire_delay=0.2)
        long = run_handshake_pipeline(32, 5, lambda rng: 1.0, wire_delay=0.2)
        assert long.completion_time > short.completion_time + 20

    def test_slowest_stage_sets_throughput(self):
        counter = {"i": 0}

        def stage_dependent(rng):
            # The sampler is shared across stages; emulate one slow stage by
            # making every 6th computation slow (stage count = 6 makes that
            # effectively one stage in steady state is slow half the time) —
            # instead, simpler: heavy-tailed services raise the cycle.
            return 1.0

        base = run_handshake_pipeline(6, 60, stage_dependent, wire_delay=0.1)
        bursty = run_handshake_pipeline(
            6, 60, two_point_sampler(1.0, 3.0, 0.3), wire_delay=0.1, seed=4
        )
        assert bursty.steady_cycle_time > base.steady_cycle_time

    def test_reproducible(self):
        sampler = two_point_sampler(1.0, 2.0, 0.2)
        a = run_handshake_pipeline(8, 30, sampler, seed=5)
        b = run_handshake_pipeline(8, 30, sampler, seed=5)
        assert a.arrival_times == b.arrival_times

    def test_event_counts_are_linear_in_work(self):
        small = run_handshake_pipeline(4, 10, lambda rng: 1.0)
        big = run_handshake_pipeline(4, 40, lambda rng: 1.0)
        assert big.events_processed < 5 * small.events_processed

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_handshake_pipeline(0, 5, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_handshake_pipeline(4, 0, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_handshake_pipeline(4, 5, lambda rng: 1.0, wire_delay=-1)


class TestAgreementWithRecurrence:
    def test_matches_blocking_recurrence_shape(self):
        """The signal-level protocol and the blocking tandem recurrence
        agree on the qualitative law: cycle grows with worst-case incidence
        and saturates with array length."""
        sampler = two_point_sampler(1.0, 2.0, 0.05)
        protocol_cycles = []
        recurrence_cycles = []
        for k in (8, 32):
            protocol_cycles.append(
                run_handshake_pipeline(k, 150, sampler, wire_delay=0.0, seed=9).steady_cycle_time
            )
            recurrence_cycles.append(
                simulate_selftimed_line(k, 150, sampler, seed=9, blocking=True).mean_cycle_time
            )
        assert protocol_cycles[1] >= protocol_cycles[0] - 0.02
        assert recurrence_cycles[1] >= recurrence_cycles[0] - 0.02
        for p, r in zip(protocol_cycles, recurrence_cycles):
            assert p == pytest.approx(r, rel=0.25)
