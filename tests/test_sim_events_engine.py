"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_stable_tie_breaking(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "x")
        assert q

    def test_fifo_order_for_equal_times(self):
        """Regression: equal-time events must pop in push order (FIFO) —
        trace diffing relies on runs being event-for-event identical."""
        q = EventQueue()
        for i in range(50):
            q.push(1.0, i)
        assert [q.pop()[1] for _ in range(50)] == list(range(50))

    def test_fifo_survives_interleaved_push_pop(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(1.0, "b")
        assert q.pop()[1] == "a"
        q.push(1.0, "c")  # pushed after b, must pop after b
        q.push(0.5, "early")
        assert q.pop()[1] == "early"
        assert q.pop()[1] == "b"
        assert q.pop()[1] == "c"


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("late"))
        sim.schedule(1.0, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]
        assert sim.now == 2.0

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(1.5, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 2.5]

    def test_run_until(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run(until=2.0)
        assert log == [1.0, 2.0]
        assert sim.pending == 1

    def test_max_events_guard(self):
        sim = Simulator()

        def rescheduling():
            sim.schedule(1.0, rescheduling)

        sim.schedule(0.0, rescheduling)
        processed = sim.run(max_events=10)
        assert processed == 10

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_event_counter_accumulates(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_simultaneous_actions_run_in_schedule_order(self):
        """The engine inherits the queue's FIFO tie-break: actions at the
        same instant execute in the order they were scheduled, including
        ones scheduled from a callback at the current time."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: (log.append("second"),
                                   sim.schedule(0.0, lambda: log.append("nested"))))
        sim.schedule(1.0, lambda: log.append("third"))
        sim.run()
        assert log == ["first", "second", "third", "nested"]
