"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_stable_tie_breaking(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "x")
        assert q

    def test_fifo_order_for_equal_times(self):
        """Regression: equal-time events must pop in push order (FIFO) —
        trace diffing relies on runs being event-for-event identical."""
        q = EventQueue()
        for i in range(50):
            q.push(1.0, i)
        assert [q.pop()[1] for _ in range(50)] == list(range(50))

    def test_fifo_survives_interleaved_push_pop(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(1.0, "b")
        assert q.pop()[1] == "a"
        q.push(1.0, "c")  # pushed after b, must pop after b
        q.push(0.5, "early")
        assert q.pop()[1] == "early"
        assert q.pop()[1] == "b"
        assert q.pop()[1] == "c"


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("late"))
        sim.schedule(1.0, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]
        assert sim.now == 2.0

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(1.5, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 2.5]

    def test_run_until(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run(until=2.0)
        assert log == [1.0, 2.0]
        assert sim.pending == 1

    def test_max_events_guard(self):
        sim = Simulator()

        def rescheduling():
            sim.schedule(1.0, rescheduling)

        sim.schedule(0.0, rescheduling)
        processed = sim.run(max_events=10)
        assert processed == 10

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_event_counter_accumulates(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_simultaneous_actions_run_in_schedule_order(self):
        """The engine inherits the queue's FIFO tie-break: actions at the
        same instant execute in the order they were scheduled, including
        ones scheduled from a callback at the current time."""
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: (log.append("second"),
                                   sim.schedule(0.0, lambda: log.append("nested"))))
        sim.schedule(1.0, lambda: log.append("third"))
        sim.run()
        assert log == ["first", "second", "third", "nested"]


class TestRaisingCallbacks:
    """A callback that raises must not desynchronize the engine's
    accounting from the popped event (the dispatch-consistency bugfix)."""

    def test_events_processed_counts_the_raising_event(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("payload failure")

        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, boom)
        sim.schedule(3.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run()
        # Two events were popped and dispatched (the second one fatally).
        assert sim.events_processed == 2
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_dispatch_span_and_metrics_emitted_on_raise(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import RecordingTracer

        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        sim = Simulator(tracer=tracer, metrics=metrics)

        def boom():
            raise ValueError("nope")

        sim.schedule(1.0, boom)
        with pytest.raises(ValueError):
            sim.run()
        dispatches = tracer.by_kind("engine", "dispatch")
        assert len(dispatches) == 1
        assert dispatches[0].data["error"] is True
        assert dispatches[0].data["queue_depth"] == 0
        assert metrics.counter("engine.events").value == 1
        assert metrics.counter("engine.dispatch_errors").value == 1
        assert metrics.gauge("engine.queue_depth").value == 0

    def test_successful_dispatch_payload_unchanged(self):
        from repro.obs.trace import RecordingTracer

        tracer = RecordingTracer()
        sim = Simulator(tracer=tracer)
        sim.schedule(1.0, lambda: None)
        sim.run()
        (event,) = tracer.by_kind("engine", "dispatch")
        assert set(event.data) == {"wall_s", "queue_depth"}

    def test_run_resumes_after_a_raise(self):
        sim = Simulator()
        ran = []

        def boom():
            raise RuntimeError("once")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: ran.append("later"))
        with pytest.raises(RuntimeError):
            sim.run()
        sim.run()
        assert ran == ["later"]
        assert sim.events_processed == 2
