"""The observability layer threaded through the simulators.

The load-bearing property: instrumentation must *observe*, never
*perturb* — every traced run must produce exactly the results of its
untraced twin (golden tests below), while the tracer/metrics side
channels fill with the time-resolved story.
"""

import pytest

from repro.arrays.systolic import build_fir_array
from repro.arrays.topologies import mesh
from repro.analysis.montecarlo import run_trials
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.core.hybrid import build_hybrid
from repro.delay.variation import NoVariation
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.replay import summarize_trace
from repro.obs.trace import JsonlTracer, RecordingTracer, load_trace
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.engine import Simulator
from repro.sim.faults import JitteredSchedule, summarize_violations
from repro.sim.handshake import run_handshake_pipeline, run_handshake_wavefront
from repro.sim.hybrid_sim import simulate_hybrid
from repro.sim.selftimed import simulate_selftimed_line, two_point_sampler


def fir_program_and_schedule(period=10.0):
    program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
    buffered = BufferedClockTree(
        spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
        wire_variation=NoVariation(),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, period, program.array.comm.nodes()
    )
    return program, schedule


class TestEngineInstrumentation:
    def test_dispatch_events_and_queue_gauge(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        sim = Simulator(tracer=tracer, metrics=metrics)
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run()
        dispatches = tracer.by_kind("engine", "dispatch")
        assert len(dispatches) == 3
        assert [e.t for e in dispatches] == [1.0, 2.0, 3.0]
        assert all(e.data["wall_s"] >= 0.0 for e in dispatches)
        assert metrics.counter("engine.events").value == 3
        assert metrics.gauge("engine.queue_depth").value == 0

    def test_runaway_guard_warns(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        sim = Simulator(tracer=tracer, metrics=metrics)

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(0.0, reschedule)
        sim.run(max_events=5)
        (guard,) = tracer.by_kind("engine", "runaway_guard")
        assert guard.data["limit"] == 5
        assert guard.data["pending"] >= 1
        assert metrics.counter("engine.runaway_guards").value == 1

    def test_untraced_engine_unchanged(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(sim.now))
        assert sim.run() == 1
        assert log == [1.0]


class TestClockedTracing:
    def test_traced_run_matches_untraced(self):
        program, base = fir_program_and_schedule(period=4.0)
        jittered = JitteredSchedule(base, amplitude=1.9, seed=7)
        plain = ClockedArraySimulator(program, jittered, delta=1.0).run()
        tracer = RecordingTracer()
        traced = ClockedArraySimulator(
            program, jittered, delta=1.0, tracer=tracer
        ).run()
        assert traced.result == plain.result
        assert traced.violations == plain.violations
        assert traced.makespan == plain.makespan

    def test_fire_and_violation_events(self):
        program, base = fir_program_and_schedule(period=4.0)
        jittered = JitteredSchedule(base, amplitude=1.9, seed=7)
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        result = ClockedArraySimulator(
            program, jittered, delta=1.0, tracer=tracer, metrics=metrics
        ).run()
        assert not result.clean
        fires = tracer.by_kind("tick", "fire")
        n_cells = len(program.array.comm.nodes())
        assert len(fires) == n_cells * result.ticks
        violation_events = tracer.by_category("violation")
        assert len(violation_events) == len(result.violations)
        # Each violation event is time-resolved and carries its edge.
        event = violation_events[0]
        assert event.kind in ("stale", "race")
        assert "edge" in event.data and "receiver_tick" in event.data
        assert metrics.counter("clocked.violations").value == len(result.violations)
        assert metrics.histogram("clocked.tick_skew").total == result.ticks

    def test_jsonl_trace_replays_to_violation_timeline(self, tmp_path):
        """A8-breakage end to end: break the schedule, trace to disk,
        replay — the summary shows *when* the failures happened."""
        program, base = fir_program_and_schedule(period=4.0)
        jittered = JitteredSchedule(base, amplitude=1.9, seed=7)
        path = str(tmp_path / "a8.jsonl")
        with JsonlTracer(path) as tracer:
            result = ClockedArraySimulator(
                program, jittered, delta=1.0, tracer=tracer
            ).run()
        summary = summarize_trace(load_trace(path))
        assert summary.total_violations == len(result.violations)
        assert summary.violation_timeline  # time-resolved, not a flat list
        ticks = [t for t, _s, _r in summary.violation_timeline]
        vsummary = summarize_violations(result.violations)
        assert min(ticks) == vsummary.first_failure_tick
        assert max(ticks) == vsummary.last_failure_tick
        assert summary.skew_samples == result.ticks
        assert summary.max_skew > 0.0


class TestHybridTracing:
    def test_traced_matches_untraced_golden(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        plain = simulate_hybrid(scheme, steps=10, delta=1.0, jitter=0.3, seed=3)
        tracer = RecordingTracer()
        traced = simulate_hybrid(
            scheme, steps=10, delta=1.0, jitter=0.3, seed=3, tracer=tracer
        )
        assert traced == plain  # byte-identical dataclass, same RNG stream

    def test_step_events_and_skew_metrics(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        result = simulate_hybrid(
            scheme, steps=10, delta=1.0, jitter=0.3, seed=3,
            tracer=tracer, metrics=metrics,
        )
        assert len(tracer.by_kind("hybrid", "step")) == result.elements * 10
        assert len(tracer.by_kind("hybrid", "step_summary")) == 10
        assert metrics.histogram("hybrid.step_skew").total == 10
        assert metrics.gauge("hybrid.cycle_time").value == pytest.approx(
            result.cycle_time
        )


class TestSelfTimedMetrics:
    def test_results_identical_and_histograms_filled(self):
        sampler = two_point_sampler(1.0, 3.0, 0.2)
        plain = simulate_selftimed_line(8, 40, sampler, seed=5)
        metrics = MetricsRegistry()
        observed = simulate_selftimed_line(8, 40, sampler, seed=5, metrics=metrics)
        assert observed == plain
        service = metrics.histogram("selftimed.service_time")
        assert service.total == 8 * 40
        stall = metrics.histogram("selftimed.stall_time")
        assert stall.total == 8 * 40
        # Blocking backpressure must show up as nonzero stalls somewhere.
        assert stall.sum > 0.0


class TestHandshakeMetrics:
    def test_pipeline_histograms(self):
        sampler = two_point_sampler(1.0, 4.0, 0.3)
        plain = run_handshake_pipeline(4, 20, sampler, seed=2)
        metrics = MetricsRegistry()
        observed = run_handshake_pipeline(4, 20, sampler, seed=2, metrics=metrics)
        assert observed.arrival_times == plain.arrival_times
        service = metrics.histogram("handshake.service_time")
        assert service.total == 4 * 20  # every stage latches every item
        stall = metrics.histogram("handshake.stall_time")
        assert stall.total > 0
        assert stall.sum > 0.0  # a slow stage blocked its upstream

    def test_wavefront_histograms_and_engine_metrics(self):
        sampler = two_point_sampler(1.0, 2.0, 0.2)
        metrics = MetricsRegistry()
        result = run_handshake_wavefront(3, 3, 5, sampler, seed=1, metrics=metrics)
        assert result.items == 5
        assert metrics.histogram("handshake.service_time").total == 9 * 5
        assert metrics.counter("engine.events").value == result.events_processed


class TestMonteCarloProgress:
    def test_trial_events_and_summary(self):
        tracer = RecordingTracer()
        profiler = Profiler()
        summary = run_trials(
            lambda seed: float(seed), 5, base_seed=10,
            tracer=tracer, profiler=profiler,
        )
        trials = tracer.by_kind("montecarlo", "trial")
        assert len(trials) == 5
        assert [e.data["seed"] for e in trials] == [10, 11, 12, 13, 14]
        assert trials[-1].data["completed"] == 5
        assert all(e.data["wall_s"] >= 0.0 for e in trials)
        (final,) = tracer.by_kind("montecarlo", "summary")
        assert final.data["mean"] == pytest.approx(summary.mean)
        assert profiler.report()[0].path == "montecarlo"

    def test_untraced_unchanged(self):
        a = run_trials(lambda seed: float(seed % 3), 6)
        b = run_trials(lambda seed: float(seed % 3), 6, tracer=RecordingTracer())
        assert a == b


class TestViolationSummaryExport:
    def test_last_tick_and_per_cell(self):
        from repro.sim.clocked import TimingViolation

        violations = [
            TimingViolation(("a", "b"), 2, 1, 0),
            TimingViolation(("a", "b"), 7, 6, 5),
            TimingViolation(("c", "b"), 4, 3, 4),
            TimingViolation(("c", "d"), 5, 4, 3),
        ]
        summary = summarize_violations(violations)
        assert summary.first_failure_tick == 2
        assert summary.last_failure_tick == 7
        assert summary.per_cell == {"b": 3, "d": 1}

    def test_to_dict_round_trips_through_json(self):
        import json

        from repro.sim.clocked import TimingViolation

        summary = summarize_violations(
            [TimingViolation(("a", "b"), 2, 1, 0), TimingViolation(("a", "b"), 3, 2, 3)]
        )
        exported = json.loads(json.dumps(summary.to_dict()))
        assert exported["total"] == 2
        assert exported["stale"] == 1
        assert exported["race"] == 1
        assert exported["first_failure_tick"] == 2
        assert exported["last_failure_tick"] == 3
        assert exported["worst_edge"] == ["a", "b"]
        assert exported["worst_edge_count"] == 2
        assert exported["per_cell"] == {"b": 2}

    def test_empty_summary_to_dict(self):
        exported = summarize_violations([]).to_dict()
        assert exported["total"] == 0
        assert exported["per_cell"] == {}
