"""Unit tests for buffered (pipelined) clock trees — assumptions A7/A8."""

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation, NoVariation


def buffered_spine(n, eps=0.2, seed=1, spacing=1.0):
    array = linear_array(n)
    return array, BufferedClockTree(
        spine_clock(array),
        buffer_spacing=spacing,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=eps, seed=seed),
        buffer_model=InverterPairModel(nominal=spacing, seed=seed),
    )


class TestConstruction:
    def test_buffer_count_scales_with_wire_length(self):
        _a1, b1 = buffered_spine(16)
        _a2, b2 = buffered_spine(64)
        assert b2.buffer_count > b1.buffer_count

    def test_zero_length_edges_free(self):
        array = linear_array(4)
        tree = spine_clock(array)  # taps have zero length
        b = BufferedClockTree(tree, wire_variation=NoVariation())
        for cell in range(4):
            station = ("tap", cell)
            assert b.arrival(cell) == b.arrival(station)

    def test_rejects_bad_spacing(self):
        array = linear_array(4)
        with pytest.raises(ValueError):
            BufferedClockTree(spine_clock(array), buffer_spacing=0)


class TestTauConstancy:
    def test_tau_independent_of_size(self):
        taus = []
        for n in (16, 128, 1024):
            _a, b = buffered_spine(n, eps=0.2, seed=3)
            taus.append(b.tau())
        assert max(taus) - min(taus) <= 0.25  # bounded by segment + buffer max

    def test_tau_bounded_by_segment_plus_buffer(self):
        _a, b = buffered_spine(256, eps=0.2)
        # Max per-segment: wire (<= 1.2 per unit) + buffer (~1).
        assert b.tau() <= 1.2 + 1.1

    def test_latency_grows_linearly(self):
        _a1, b1 = buffered_spine(64)
        _a2, b2 = buffered_spine(256)
        assert b2.latency() / b1.latency() == pytest.approx(4.0, rel=0.15)


class TestEmpiricalSkew:
    def test_neighbor_skew_constant_on_spine(self):
        skews = []
        for n in (32, 256, 1024):
            array, b = buffered_spine(n, eps=0.2, seed=2)
            skews.append(b.max_skew(array.communicating_pairs()))
        assert max(skews) <= 2.5  # s=1 -> at most (m+eps)*1 + buffer ~ 2.2
        assert max(skews) - min(skews) <= 0.5

    def test_skew_bounded_by_summation_model(self):
        # Empirical skew <= (m + eps) * s + buffer asymmetry contribution.
        array, b = buffered_spine(64, eps=0.3, seed=5)
        tree = b.tree
        for a_cell, b_cell in array.communicating_pairs():
            s = tree.path_length(a_cell, b_cell)
            assert b.skew(a_cell, b_cell) <= (1.0 + 0.3) * s + 2.0 + 1e-9

    def test_zero_variation_zero_skew_on_htree(self):
        array = mesh(4, 4)
        b = BufferedClockTree(
            htree_for_array(array),
            wire_variation=NoVariation(m=1.0),
            buffer_model=InverterPairModel(nominal=1.0),
        )
        assert b.max_skew(array.communicating_pairs()) <= 1e-9

    def test_variation_breaks_htree_equidistance(self):
        array = mesh(8, 8)
        b = BufferedClockTree(
            htree_for_array(array),
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.3, seed=4),
        )
        assert b.max_skew(array.communicating_pairs()) > 0.1

    def test_empty_pairs(self):
        _a, b = buffered_spine(4)
        assert b.max_skew([]) == 0.0


class TestDeterminismAndA8:
    def test_same_seed_same_arrivals(self):
        a1, b1 = buffered_spine(32, seed=11)
        _a2, b2 = buffered_spine(32, seed=11)
        assert all(b1.arrival(c) == b2.arrival(c) for c in range(32))

    def test_resample_changes_arrivals(self):
        array, b = buffered_spine(32, seed=11)
        before = [b.arrival(c) for c in range(32)]
        b.resample(99)
        after = [b.arrival(c) for c in range(32)]
        assert before != after

    def test_pulse_distortion_zero_without_bias(self):
        _a, b = buffered_spine(32)
        assert b.max_pulse_distortion() == pytest.approx(0.0)

    def test_pulse_distortion_accumulates_with_bias(self):
        array = linear_array(64)
        b = BufferedClockTree(
            spine_clock(array),
            wire_variation=NoVariation(),
            buffer_model=InverterPairModel(nominal=1.0, bias=0.1),
        )
        assert b.pulse_distortion(63) == pytest.approx(0.1 * 63, rel=0.05)

    def test_events_in_flight(self):
        _a, b = buffered_spine(256)
        depth = b.events_in_flight(period=4.0)
        assert depth > 10  # genuinely pipelined
        with pytest.raises(ValueError):
            b.events_in_flight(0)
