"""Property-based tests (hypothesis) for finite-channel backpressure.

Three laws over random systolic programs and random service/wire draws:

* **monotonicity** — the self-timed makespan is monotone non-increasing
  in channel capacity (more buffering can only reorder slack, never
  create work);
* **unbounded limit** — capacity at least the wave count reproduces the
  ``channel_capacity=None`` model bit for bit (makespan and per-cell
  finish times);
* **triple agreement** — the event-driven engine, the scalar bounded
  recurrence, and the compiled marked-graph kernel compute the same
  float at every capacity (``ChannelDeadlockError`` from all paths for
  zero-token cycles counts as agreement).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.systolic import (
    build_fir_array,
    build_matvec_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)
from repro.sim.dataflow import (
    ChannelDeadlockError,
    SelfTimedProgramSimulator,
    constant_service,
    hashed_service,
)


@st.composite
def random_programs(draw):
    """A random systolic program over random (finite) float payloads."""
    rng = random.Random(draw(st.integers(0, 2**30)))
    kind = draw(st.sampled_from(["fir", "matvec", "sorter", "matmul"]))

    def val():
        return round(rng.uniform(-4.0, 4.0), 3)

    if kind == "fir":
        taps = [val() for _ in range(rng.randint(1, 4))]
        xs = [val() for _ in range(rng.randint(2, 8))]
        return build_fir_array(taps, xs)
    if kind == "matvec":
        n = rng.randint(1, 4)
        a = [[val() for _ in range(n)] for _ in range(n)]
        x = [val() for _ in range(n)]
        return build_matvec_array(a, x)
    if kind == "sorter":
        keys = [val() for _ in range(rng.randint(2, 8))]
        return build_odd_even_sorter(keys)
    n = rng.randint(1, 3)
    a = [[val() for _ in range(n)] for _ in range(n)]
    b = [[val() for _ in range(n)] for _ in range(n)]
    return build_mesh_matmul(a, b)


def _random_service(rng):
    return rng.choice(
        [
            None,
            constant_service(rng.uniform(0.25, 3.0)),
            hashed_service(0.5, 2.5, 0.4, seed=rng.randint(0, 2**20)),
        ]
    )


def _sim(program, service, wire, capacity):
    return SelfTimedProgramSimulator(
        program, service=service, wire_delay=wire, channel_capacity=capacity
    )


@given(random_programs(), st.data())
@settings(max_examples=40, deadline=None)
def test_makespan_monotone_in_capacity(program, data):
    rng = random.Random(data.draw(st.integers(0, 2**30)))
    service = _random_service(rng)
    wire = rng.uniform(0.0, 2.0)
    cyclic = not program.array.comm.is_acyclic()
    capacities = [2, 3, 5, None] if cyclic else [1, 2, 3, 5, None]
    spans = [
        _sim(program, service, wire, cap).run().makespan
        for cap in capacities
    ]
    for tighter, looser in zip(spans, spans[1:]):
        assert tighter >= looser


@given(random_programs(), st.data())
@settings(max_examples=40, deadline=None)
def test_wide_capacity_bitwise_equals_unbounded(program, data):
    rng = random.Random(data.draw(st.integers(0, 2**30)))
    service = _random_service(rng)
    wire = rng.uniform(0.0, 2.0)
    unbounded = _sim(program, service, wire, None)
    unbounded_run = unbounded.run()
    margin = rng.randint(0, 3)
    wide = _sim(program, service, wire, program.cycles + margin)
    wide_run = wide.run()
    assert wide_run.makespan == unbounded_run.makespan
    assert wide_run.finish_times == unbounded_run.finish_times
    assert wide.recurrence_makespan() == unbounded.recurrence_makespan()
    assert (
        wide.recurrence_makespan_scalar()
        == unbounded.recurrence_makespan_scalar()
    )


@given(random_programs(), st.data())
@settings(max_examples=40, deadline=None)
def test_engine_scalar_and_compiled_agree_at_every_capacity(program, data):
    rng = random.Random(data.draw(st.integers(0, 2**30)))
    service = _random_service(rng)
    wire = rng.uniform(0.0, 2.0)
    capacity = rng.randint(1, 6)
    cyclic = not program.array.comm.is_acyclic()
    if capacity == 1 and cyclic:
        with pytest.raises(ChannelDeadlockError):
            _sim(program, service, wire, capacity)
        unbounded = _sim(program, service, wire, None)
        with pytest.raises(ChannelDeadlockError):
            unbounded.compiled_recurrence().makespan(
                constant_service(1.0), wire, program.cycles, capacity=1
            )
        return
    sim = _sim(program, service, wire, capacity)
    run = sim.run()
    assert run.makespan == sim.recurrence_makespan()
    assert run.makespan == sim.recurrence_makespan_scalar()
    assert run.max_occupancy is not None
    assert run.max_occupancy <= capacity
