"""Unit tests for the Lemma 5 tree edge separator."""

import pytest

from repro.graphs.separators import tree_edge_separator


def complete_binary_children(depth):
    """children map of a complete binary tree with nodes (level, idx)."""
    children = {}
    for level in range(depth):
        for idx in range(2**level):
            children[(level, idx)] = [(level + 1, 2 * idx), (level + 1, 2 * idx + 1)]
    for idx in range(2**depth):
        children[(depth, idx)] = []
    return children


def path_children(n):
    children = {i: [i + 1] for i in range(n - 1)}
    children[n - 1] = []
    return children


class TestSeparatorOnLeafMarkedTrees:
    def test_balanced_tree_leaves_split_two_thirds(self):
        depth = 4
        children = complete_binary_children(depth)
        marked = {(depth, i) for i in range(2**depth)}
        result = tree_edge_separator(children, (0, 0), marked)
        assert result.worst_fraction <= 2 / 3 + 1e-9

    def test_partition_covers_marked_exactly(self):
        children = complete_binary_children(3)
        marked = {(3, i) for i in range(8)}
        result = tree_edge_separator(children, (0, 0), marked)
        assert result.below | result.above == marked
        assert not (result.below & result.above)

    def test_root_split_is_even(self):
        children = complete_binary_children(3)
        marked = {(3, i) for i in range(8)}
        result = tree_edge_separator(children, (0, 0), marked)
        assert len(result.below) == 4  # perfectly balanced tree splits at root

    def test_skewed_marking(self):
        # Mark only leaves of the left subtree plus one right leaf.
        children = complete_binary_children(4)
        marked = {(4, i) for i in range(8)} | {(4, 15)}
        result = tree_edge_separator(children, (0, 0), marked)
        assert result.worst_fraction <= 2 / 3 + 1e-9


class TestSeparatorOnPaths:
    def test_path_splits_in_middle(self):
        children = path_children(9)
        marked = set(range(9))
        result = tree_edge_separator(children, 0, marked)
        assert result.worst_fraction <= 2 / 3 + 1e-9

    def test_two_marked_nodes(self):
        children = path_children(5)
        result = tree_edge_separator(children, 0, {0, 4})
        assert result.worst_fraction == 0.5

    def test_marked_subset(self):
        children = path_children(20)
        marked = {3, 7, 12, 18}
        result = tree_edge_separator(children, 0, marked)
        assert result.worst_fraction <= 0.5 + 1e-9  # 2-2 split achievable


class TestSeparatorEdgeCases:
    def test_requires_two_marked(self):
        with pytest.raises(ValueError):
            tree_edge_separator(path_children(3), 0, {1})

    def test_rejects_marked_outside_tree(self):
        with pytest.raises(ValueError):
            tree_edge_separator(path_children(3), 0, {0, 99})

    def test_single_edge_tree(self):
        children = {0: [1], 1: []}
        result = tree_edge_separator(children, 0, {0, 1})
        assert result.edge == (0, 1)
        assert result.worst_fraction == 0.5

    def test_internal_marked_worst_case_is_bounded(self):
        # The adversarial case from the implementation note: a marked
        # branching node whose subtrees each hold just under |M|/3.  The
        # achieved fraction may exceed 2/3 slightly but never 3/4 + eps.
        children = {
            "r": ["v", "w"],
            "v": ["a", "b"],
            "w": ["c"],
            "a": [],
            "b": [],
            "c": [],
        }
        marked = {"v", "a", "b", "c"}
        result = tree_edge_separator(children, "r", marked)
        assert result.worst_fraction <= 0.75 + 1e-9

    def test_edge_is_parent_child(self):
        children = complete_binary_children(2)
        marked = {(2, i) for i in range(4)}
        result = tree_edge_separator(children, (0, 0), marked)
        parent, child = result.edge
        assert child in children[parent]
