"""Tests for the executable assumption audit (A1-A11)."""

import pytest

from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.builders import star_clock
from repro.clocktree.htree import dissection_tree_for_linear, htree_for_array
from repro.clocktree.spine import spine_clock
from repro.core.assumptions import (
    audit,
    check_a2_unit_area,
    check_a4_clock_tree,
    check_a9_equidistance,
    check_a10_bounded_s,
    failures,
)
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph


class TestIndividualChecks:
    def test_a2_detects_overlap(self):
        comm = CommGraph(edges=[("a", "b")])
        layout = Layout({"a": Point(0, 0), "b": Point(0.3, 0)})
        array = ProcessorArray(comm, layout, name="crowded")
        assert not check_a2_unit_area(array).holds

    def test_a2_passes_grid(self):
        assert check_a2_unit_area(mesh(4, 4)).holds

    def test_a4_flags_missing_cells(self):
        array = mesh(3, 3)
        partial = spine_clock(linear_array(4))
        result = check_a4_clock_tree(array, partial)
        assert not result.holds
        assert "missing cells=9" in result.detail

    def test_a4_flags_non_binary(self):
        array = mesh(2, 2)
        star = star_clock(array)  # 4 children at the root
        assert not check_a4_clock_tree(array, star).holds

    def test_a4_passes_htree(self):
        array = mesh(4, 4)
        assert check_a4_clock_tree(array, htree_for_array(array)).holds

    def test_a9_equidistance(self):
        array = mesh(4, 4)
        assert check_a9_equidistance(array, htree_for_array(array)).holds
        assert not check_a9_equidistance(array, spine_clock(array, order=array.comm.nodes())).holds

    def test_a10_budget(self):
        array = linear_array(32)
        spine = spine_clock(array)
        assert check_a10_bounded_s(array, spine, s_budget=1.0).holds
        dissection = dissection_tree_for_linear(array)
        assert not check_a10_bounded_s(array, dissection, s_budget=1.0).holds


class TestAudit:
    def test_good_configuration_all_pass(self):
        array = linear_array(16)
        tree = spine_clock(array)
        buffered = BufferedClockTree(tree)
        checks = audit(array, tree, buffered=buffered, s_budget=1.0)
        checkable_failures = failures(checks)
        # A9-readiness fails for a spine (cells are not equidistant) —
        # that's the only expected miss, and it's informational for the
        # summation-model scheme.
        assert all(c.assumption.startswith("A9") for c in checkable_failures)

    def test_htree_on_mesh_passes_a9_fails_a10(self):
        array = mesh(8, 8)
        tree = htree_for_array(array)
        checks = {c.assumption: c for c in audit(array, tree, s_budget=2.0)}
        assert checks["A9-readiness (equidistant cells, d = 0)"].holds
        assert not checks["A10-readiness (bounded communicating-pair s)"].holds

    def test_a8_reported_not_checkable(self):
        array = linear_array(8)
        tree = spine_clock(array)
        checks = audit(array, tree, buffered=BufferedClockTree(tree))
        a8 = [c for c in checks if c.assumption.startswith("A8")][0]
        assert a8.holds and not a8.checkable

    def test_a6_reports_growth(self):
        array = linear_array(100)
        checks = {c.assumption: c for c in audit(array, spine_clock(array))}
        a6 = checks["A6 (equipotential tau >= alpha*P)"]
        assert "99" in a6.detail

    def test_failures_empty_for_clean_config(self):
        array = mesh(4, 4)
        tree = htree_for_array(array)
        checks = audit(array, tree)
        assert failures(checks) == []
