"""Tests for executing real programs under hybrid synchronization."""

import numpy as np
import pytest

from repro.arrays.systolic import build_mesh_matmul, build_odd_even_sorter
from repro.sim.hybrid_exec import execute_program_hybrid


class TestFunctionalEquivalence:
    def test_matmul_matches_lockstep(self):
        a = [[1.0, 2.0], [3.0, 4.0]]
        b = [[5.0, 6.0], [7.0, 8.0]]
        program = build_mesh_matmul(a, b)
        execution = execute_program_hybrid(program, element_size=2.0)
        assert np.allclose(execution.result, program.run_lockstep())
        assert np.allclose(execution.result, np.array(a) @ np.array(b))

    def test_sorter_matches_lockstep(self):
        program = build_odd_even_sorter([9.0, 2.0, 7.0, 1.0, 5.0])
        execution = execute_program_hybrid(program, element_size=2.0)
        assert execution.result == [1.0, 2.0, 5.0, 7.0, 9.0]

    def test_jitter_does_not_affect_data(self):
        program = build_odd_even_sorter([3.0, 1.0, 2.0])
        execution = execute_program_hybrid(
            program, element_size=2.0, jitter=0.5, seed=4
        )
        assert execution.result == [1.0, 2.0, 3.0]


class TestDependencyGuarantee:
    def test_dependencies_verified(self):
        program = build_mesh_matmul(
            np.eye(3).tolist(), np.ones((3, 3)).tolist()
        )
        execution = execute_program_hybrid(program, element_size=2.0)
        assert execution.verify_dependencies()

    def test_dependencies_hold_under_jitter(self):
        program = build_odd_even_sorter([4.0, 3.0, 2.0, 1.0])
        execution = execute_program_hybrid(
            program, element_size=1.5, jitter=0.8, seed=11
        )
        assert execution.verify_dependencies()

    def test_tampered_times_fail_verification(self):
        program = build_odd_even_sorter([2.0, 1.0])
        execution = execute_program_hybrid(program, element_size=1.0)
        if len(execution.scheme.elements) < 2:
            pytest.skip("needs at least two elements")
        # Corrupt a producer's finish time far into the future.
        some_step = 0
        eid = next(iter(execution.finish_times[some_step]))
        execution.finish_times[some_step][eid] += 1e9
        assert not execution.verify_dependencies()


class TestTiming:
    def test_cycle_constant_in_array_size(self):
        cycles = []
        for n in (4, 8):
            program = build_mesh_matmul(
                np.eye(n).tolist(), np.ones((n, n)).tolist()
            )
            execution = execute_program_hybrid(program, element_size=3.0, delta=1.0)
            cycles.append(execution.cycle_time)
        assert cycles[1] <= cycles[0] * 1.3

    def test_makespan_scales_with_steps(self):
        program = build_odd_even_sorter([5.0, 4.0, 3.0, 2.0, 1.0])
        short = execute_program_hybrid(program, element_size=2.0, steps=6)
        long = execute_program_hybrid(program, element_size=2.0, steps=24)
        assert long.makespan > 3 * short.makespan

    def test_timing_arrays_have_step_shape(self):
        program = build_odd_even_sorter([2.0, 1.0, 3.0])
        execution = execute_program_hybrid(program, element_size=2.0)
        assert len(execution.start_times) == execution.steps
        assert len(execution.finish_times) == execution.steps

    def test_rejects_bad_args(self):
        program = build_odd_even_sorter([1.0, 2.0])
        with pytest.raises(ValueError):
            execute_program_hybrid(program, delta=-1)
