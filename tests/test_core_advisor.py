"""Tests for the synchronization design advisor."""

import pytest

from repro.arrays.topologies import complete_binary_tree, linear_array, mesh, ring
from repro.core.advisor import classify_structure, recommend
from repro.core.models import DifferenceModel, SummationModel


class TestClassification:
    def test_linear_is_one_dimensional(self):
        assert classify_structure(linear_array(16)) == "one-dimensional"

    def test_ring_is_one_dimensional(self):
        assert classify_structure(ring(8)) == "one-dimensional"

    def test_tree_detected(self):
        assert classify_structure(complete_binary_tree(3)) == "tree"

    def test_mesh_is_two_dimensional(self):
        assert classify_structure(mesh(4, 4)) == "two-dimensional"


class TestRecommendations:
    def test_linear_summation_gets_spine(self):
        rec = recommend(linear_array(64), SummationModel(m=1.0, eps=0.1))
        assert rec.scheme == "spine"
        assert rec.scales_with_size
        assert rec.sigma == pytest.approx(1.1)
        assert any("Theorem 3" in r for r in rec.rationale)

    def test_mesh_difference_gets_htree(self):
        rec = recommend(mesh(8, 8), DifferenceModel(m=1.0))
        assert rec.scheme == "htree"
        assert rec.sigma == 0.0
        assert rec.scales_with_size

    def test_large_mesh_summation_gets_hybrid(self):
        rec = recommend(
            mesh(16, 16), SummationModel(m=1.0, eps=0.5), delta=0.2,
            hybrid_threshold=2.0, element_size=2.0,
        )
        assert rec.scheme == "hybrid"
        assert rec.hybrid_cycle is not None
        assert any("Section VI" in r for r in rec.rationale)

    def test_small_mesh_summation_keeps_clocked(self):
        rec = recommend(mesh(4, 4), SummationModel(m=1.0, eps=0.1), delta=5.0)
        assert rec.scheme != "hybrid"
        assert not rec.scales_with_size  # warned about Omega(n)
        assert any("Omega(n)" in r for r in rec.rationale)

    def test_tree_gets_comm_tree_clock(self):
        rec = recommend(complete_binary_tree(4), SummationModel(m=1.0, eps=0.1))
        assert rec.scheme == "comm-tree"

    def test_evaluations_sorted_best_first(self):
        rec = recommend(linear_array(32), SummationModel())
        sigmas = [e.sigma_bound for e in rec.evaluations]
        assert sigmas == sorted(sigmas)

    def test_period_includes_delta(self):
        rec_small = recommend(linear_array(16), SummationModel(), delta=1.0)
        rec_big = recommend(linear_array(16), SummationModel(), delta=5.0)
        assert rec_big.period == pytest.approx(rec_small.period + 4.0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            recommend(linear_array(4), SummationModel(), delta=0)
