"""Unit tests for layouts and wires (assumptions A2/A3 accounting)."""

import pytest

from repro.geometry.layout import Layout, Wire
from repro.geometry.point import Point


def grid_layout(rows, cols):
    return Layout({(r, c): Point(c, r) for r in range(rows) for c in range(cols)})


class TestWire:
    def test_length_is_polyline_manhattan(self):
        wire = Wire("a", "b", (Point(0, 0), Point(2, 0), Point(2, 2)))
        assert wire.length == 4
        assert wire.area == 4  # unit width (A3)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Wire("a", "b", (Point(0, 0),))


class TestLayoutBasics:
    def test_place_and_lookup(self):
        layout = Layout()
        layout.place("a", Point(1, 2))
        assert layout["a"] == Point(1, 2)
        assert "a" in layout
        assert "b" not in layout
        assert len(layout) == 1

    def test_place_all_and_positions_copy(self):
        layout = Layout()
        layout.place_all({"a": Point(0, 0), "b": Point(1, 0)})
        positions = layout.positions()
        positions["a"] = Point(9, 9)
        assert layout["a"] == Point(0, 0)

    def test_cells_and_iter(self):
        layout = grid_layout(2, 2)
        assert set(layout.cells()) == set(iter(layout))

    def test_distance(self):
        layout = grid_layout(2, 3)
        assert layout.distance((0, 0), (1, 2)) == 3
        assert layout.euclidean_distance((0, 0), (0, 2)) == 2

    def test_wire_registration_requires_placed_endpoints(self):
        layout = Layout({"a": Point(0, 0)})
        with pytest.raises(KeyError):
            layout.add_wire(Wire("a", "b", (Point(0, 0), Point(1, 0))))

    def test_route_straight(self):
        layout = Layout({"a": Point(0, 0), "b": Point(2, 1)})
        wire = layout.route_straight("a", "b")
        assert wire.length == 3
        assert layout.wire_area == 3
        assert len(layout.wires) == 1


class TestLayoutGeometry:
    def test_bounding_box_includes_cell_margin(self):
        layout = grid_layout(2, 2)
        box = layout.bounding_box()
        # cells at 0..1 plus half-unit margin each side
        assert box.width == 2 and box.height == 2

    def test_area_of_single_cell(self):
        layout = Layout({"a": Point(0, 0)})
        assert layout.area == 1.0  # exactly the unit cell (A2)

    def test_cell_area_counts_cells(self):
        assert grid_layout(3, 4).cell_area == 12

    def test_aspect_ratio(self):
        assert grid_layout(1, 8).aspect_ratio == 8.0
        assert grid_layout(4, 4).aspect_ratio == 1.0

    def test_diameter(self):
        assert grid_layout(3, 3).diameter == 6.0  # (2+1) + (2+1)

    def test_empty_layout_has_no_box(self):
        with pytest.raises(ValueError):
            Layout().bounding_box()


class TestWellSpaced:
    def test_unit_grid_is_well_spaced(self):
        assert grid_layout(5, 5).is_well_spaced()

    def test_overlap_detected(self):
        layout = Layout({"a": Point(0, 0), "b": Point(0.5, 0.2)})
        assert not layout.is_well_spaced()

    def test_exact_spacing_is_accepted(self):
        layout = Layout({"a": Point(0, 0), "b": Point(1.0, 0)})
        assert layout.is_well_spaced(1.0)

    def test_custom_separation(self):
        layout = Layout({"a": Point(0, 0), "b": Point(1.0, 0)})
        assert not layout.is_well_spaced(1.5)

    def test_rejects_nonpositive_separation(self):
        with pytest.raises(ValueError):
            grid_layout(2, 2).is_well_spaced(0)

    def test_large_sparse_layout(self):
        layout = Layout({i: Point(3.0 * i, 0) for i in range(200)})
        assert layout.is_well_spaced()


class TestTransforms:
    def test_translated_moves_cells_and_wires(self):
        layout = Layout({"a": Point(0, 0), "b": Point(1, 0)})
        layout.route_straight("a", "b")
        moved = layout.translated(2, 3)
        assert moved["a"] == Point(2, 3)
        assert moved.wires[0].path[0] == Point(2, 3)
        assert moved.wire_area == layout.wire_area

    def test_scaled(self):
        layout = Layout({"a": Point(1, 1), "b": Point(2, 1)})
        layout.route_straight("a", "b")
        big = layout.scaled(3.0)
        assert big["b"] == Point(6, 3)
        assert big.wires[0].length == 3 * layout.wires[0].length

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            grid_layout(2, 2).scaled(0)
