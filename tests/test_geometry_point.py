"""Unit tests for points, bounding boxes, and circle helpers."""

import math

import pytest

from repro.geometry.point import (
    ORIGIN,
    BoundingBox,
    Point,
    circle_area,
    circle_circumference,
    points_within,
    polyline_length,
)


class TestPoint:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_euclidean_distance(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    def test_chebyshev_distance(self):
        assert Point(0, 0).chebyshev(Point(3, 4)) == 4

    def test_manhattan_dominates_euclidean(self):
        a, b = Point(1.5, -2.0), Point(-3.25, 7.0)
        assert a.manhattan(b) >= a.euclidean(b)

    def test_distance_symmetry(self):
        a, b = Point(2, 5), Point(-1, 3)
        assert a.manhattan(b) == b.manhattan(a)
        assert a.euclidean(b) == b.euclidean(a)

    def test_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scaled_and_translated(self):
        assert Point(1, 2).scaled(2.0) == Point(2, 4)
        assert Point(1, 2).translated(1, -1) == Point(2, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_iteration_unpacks(self):
        x, y = Point(5, 7)
        assert (x, y) == (5, 7)

    def test_origin(self):
        assert ORIGIN == Point(0.0, 0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1  # type: ignore[misc]


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == Point(2, 1)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BoundingBox(2, 0, 1, 1)

    def test_aspect_ratio_is_long_over_short(self):
        assert BoundingBox(0, 0, 4, 2).aspect_ratio == 2.0
        assert BoundingBox(0, 0, 2, 4).aspect_ratio == 2.0

    def test_aspect_ratio_degenerate_strip(self):
        assert BoundingBox(0, 0, 4, 0).aspect_ratio == math.inf

    def test_aspect_ratio_point(self):
        assert BoundingBox(1, 1, 1, 1).aspect_ratio == 1.0

    def test_diameter_is_manhattan(self):
        assert BoundingBox(0, 0, 3, 4).diameter == 7

    def test_contains(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains(Point(1, 1))
        assert box.contains(Point(0, 2))
        assert not box.contains(Point(3, 1))

    def test_expanded(self):
        box = BoundingBox(0, 0, 2, 2).expanded(0.5)
        assert box.min_x == -0.5 and box.max_y == 2.5

    def test_expanded_rejects_negative(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expanded(-1)

    def test_around(self):
        box = BoundingBox.around([Point(1, 5), Point(-2, 3), Point(0, 0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, 0, 1, 5)

    def test_around_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.around([])


class TestPolylineAndCircles:
    def test_polyline_length(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 3)]
        assert polyline_length(pts) == 5

    def test_polyline_short(self):
        assert polyline_length([Point(0, 0)]) == 0.0
        assert polyline_length([]) == 0.0

    def test_circle_area(self):
        assert circle_area(2.0) == pytest.approx(math.pi * 4)

    def test_circle_circumference(self):
        assert circle_circumference(1.0) == pytest.approx(2 * math.pi)

    def test_circle_negative_radius(self):
        with pytest.raises(ValueError):
            circle_area(-1)
        with pytest.raises(ValueError):
            circle_circumference(-1)

    def test_points_within(self):
        labelled = [("a", Point(0, 0)), ("b", Point(3, 0)), ("c", Point(0, 1))]
        assert points_within(labelled, Point(0, 0), 1.5) == ["a", "c"]
