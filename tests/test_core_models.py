"""Unit tests for the skew models (Section III)."""

import pytest

from repro.clocktree.tree import ClockTree
from repro.core.models import (
    DifferenceModel,
    PhysicalModel,
    SummationModel,
    max_skew_bound,
    max_skew_lower_bound,
)
from repro.geometry.point import Point


@pytest.fixture
def vee():
    """Root with two legs of lengths 2 and 5: d = 3, s = 7 between tips."""
    t = ClockTree("r", Point(0, 0))
    t.add_child("r", "a", Point(2, 0))  # length 2
    t.add_child("r", "b", Point(0, 5))  # length 5
    return t


class TestDifferenceModel:
    def test_linear_default(self, vee):
        model = DifferenceModel(m=2.0)
        assert model.skew_bound(vee, "a", "b") == pytest.approx(6.0)  # 2 * d

    def test_custom_f(self, vee):
        model = DifferenceModel(f=lambda d: d * d)
        assert model.skew_bound(vee, "a", "b") == pytest.approx(9.0)

    def test_equidistant_nodes_zero_skew(self):
        t = ClockTree("r", Point(0, 0))
        t.add_child("r", "a", Point(3, 0))
        t.add_child("r", "b", Point(0, 3))
        assert DifferenceModel().skew_bound(t, "a", "b") == 0.0

    def test_no_lower_bound(self, vee):
        assert DifferenceModel().skew_lower_bound(vee, "a", "b") == 0.0


class TestSummationModel:
    def test_default_bracket(self, vee):
        model = SummationModel(m=1.0, eps=0.1)
        assert model.skew_bound(vee, "a", "b") == pytest.approx(1.1 * 7)
        assert model.skew_lower_bound(vee, "a", "b") == pytest.approx(0.1 * 7)

    def test_custom_g(self, vee):
        model = SummationModel(g=lambda s: 3 * s + 1)
        assert model.skew_bound(vee, "a", "b") == pytest.approx(22.0)

    def test_explicit_beta(self, vee):
        model = SummationModel(beta=0.5, eps=0.1)
        assert model.skew_lower_bound(vee, "a", "b") == pytest.approx(3.5)

    def test_beta_defaults_to_eps(self):
        assert SummationModel(eps=0.2).beta_value == 0.2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SummationModel(beta=-1)
        with pytest.raises(ValueError):
            SummationModel(eps=-0.1)


class TestPhysicalModel:
    def test_exact_formula(self, vee):
        model = PhysicalModel(m=1.0, eps=0.1)
        # sigma = m*d + eps*s = 3 + 0.7
        assert model.skew_bound(vee, "a", "b") == pytest.approx(3.7)

    def test_bracketing(self, vee):
        """eps*s <= m*d + eps*s <= (m+eps)*s — the Section III inequality."""
        model = PhysicalModel(m=1.0, eps=0.1)
        sigma = model.skew_bound(vee, "a", "b")
        s = vee.path_length("a", "b")
        assert model.eps * s <= sigma <= (model.m + model.eps) * s

    def test_as_difference_drops_eps(self, vee):
        model = PhysicalModel(m=2.0, eps=0.1).as_difference()
        assert model.skew_bound(vee, "a", "b") == pytest.approx(6.0)

    def test_as_summation_preserves_bracket(self, vee):
        phys = PhysicalModel(m=1.0, eps=0.2)
        summ = phys.as_summation()
        assert summ.skew_bound(vee, "a", "b") == pytest.approx(1.2 * 7)
        assert summ.skew_lower_bound(vee, "a", "b") == pytest.approx(0.2 * 7)

    def test_zero_eps_reduces_to_difference(self, vee):
        phys = PhysicalModel(m=1.0, eps=0.0)
        diff = DifferenceModel(m=1.0)
        assert phys.skew_bound(vee, "a", "b") == diff.skew_bound(vee, "a", "b")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PhysicalModel(m=0)
        with pytest.raises(ValueError):
            PhysicalModel(m=1.0, eps=2.0)


class TestMaxSkew:
    def test_max_over_pairs(self, vee):
        model = SummationModel(m=1.0, eps=0.0)
        pairs = [("a", "b"), ("r", "a")]
        assert max_skew_bound(vee, pairs, model) == pytest.approx(7.0)

    def test_empty_pairs(self, vee):
        assert max_skew_bound(vee, [], SummationModel()) == 0.0
        assert max_skew_lower_bound(vee, [], SummationModel()) == 0.0

    def test_lower_bound_below_upper(self, vee):
        model = SummationModel(m=1.0, eps=0.1)
        pairs = [("a", "b")]
        assert max_skew_lower_bound(vee, pairs, model) <= max_skew_bound(
            vee, pairs, model
        )
