"""CompiledSkewSampler: vectorized Monte-Carlo trials vs the scalar walk.

One seeded uniform vector feeds both paths, so agreement is required to
be exact — which is what lets the shared-memory Monte-Carlo bench claim
bit-identical summaries while replacing the whole execution stack.
"""

import numpy as np
import pytest

from repro.arrays.topologies import mesh
from repro.clocktree.htree import htree_for_array
from repro.clocktree.sampler import CompiledSkewSampler


@pytest.fixture(scope="module")
def sampler():
    array = mesh(8, 8)
    return CompiledSkewSampler.from_tree(
        htree_for_array(array), array.communicating_pairs()
    )


class TestScalarAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 17, 1234])
    def test_vector_equals_scalar(self, sampler, seed):
        assert sampler.sample_max_skew(seed) == sampler.sample_max_skew_scalar(seed)

    def test_different_seeds_differ(self, sampler):
        assert sampler.sample_max_skew(0) != sampler.sample_max_skew(1)

    def test_same_seed_is_deterministic(self, sampler):
        assert sampler.sample_max_skew(42) == sampler.sample_max_skew(42)


class TestStructure:
    def test_counts(self, sampler):
        assert sampler.n_nodes == len(htree_for_array(mesh(8, 8)).nodes())
        assert sampler.n_pairs == len(mesh(8, 8).communicating_pairs())
        # Zero-length edges contribute no segments, so the only structural
        # guarantee is that positive-length edges were all sliced.
        assert 0 < sampler.n_segments

    def test_arrivals_root_zero_and_positive(self, sampler):
        arrival = sampler.arrivals(3)
        assert arrival[0] == 0.0
        assert np.all(arrival[1:] > 0.0)

    def test_no_pairs_gives_zero_skew(self):
        array = mesh(2, 2)
        sampler = CompiledSkewSampler.from_tree(htree_for_array(array), [])
        assert sampler.sample_max_skew(0) == 0.0

    def test_negative_epsilon_rejected(self):
        array = mesh(2, 2)
        with pytest.raises(ValueError):
            CompiledSkewSampler.from_tree(
                htree_for_array(array), [], epsilon=-0.1
            )

    def test_bad_buffer_spacing_rejected(self):
        array = mesh(2, 2)
        with pytest.raises(ValueError):
            CompiledSkewSampler.from_tree(
                htree_for_array(array), [], buffer_spacing=0.0
            )


class TestArenaRoundTrip:
    def test_round_trip_is_bit_identical(self, sampler):
        rebuilt = CompiledSkewSampler.from_arrays(sampler.arrays())
        for seed in (0, 9, 100):
            assert rebuilt.sample_max_skew(seed) == sampler.sample_max_skew(seed)

    def test_arrays_are_numpy_only(self, sampler):
        arrays = sampler.arrays()
        assert set(arrays) == {
            "parent", "depth", "seg_ptr", "seg_len", "pair_a", "pair_b", "params"
        }
        for value in arrays.values():
            assert isinstance(value, np.ndarray)

    def test_round_trip_from_read_only_views(self, sampler):
        # SharedArena hands out read-only views; the sampler must accept them.
        frozen = {}
        for key, value in sampler.arrays().items():
            view = value.view()
            view.flags.writeable = False
            frozen[key] = view
        rebuilt = CompiledSkewSampler.from_arrays(frozen)
        assert rebuilt.sample_max_skew(5) == sampler.sample_max_skew(5)
