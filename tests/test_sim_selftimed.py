"""Tests for the self-timed array analysis (Section I's 1 - p^k argument)."""

import pytest

from repro.sim.selftimed import (
    simulate_selftimed_line,
    two_point_sampler,
    worst_case_path_probability,
)


class TestFormula:
    def test_values(self):
        assert worst_case_path_probability(0.9, 1) == pytest.approx(0.1)
        assert worst_case_path_probability(0.9, 2) == pytest.approx(0.19)

    def test_approaches_one(self):
        assert worst_case_path_probability(0.99, 1000) > 0.9999

    def test_certain_worst_case(self):
        assert worst_case_path_probability(0.0, 5) == 1.0

    def test_never_worst_case(self):
        assert worst_case_path_probability(1.0, 5) == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            worst_case_path_probability(1.5, 3)
        with pytest.raises(ValueError):
            worst_case_path_probability(0.5, 0)


class TestSampler:
    def test_two_point_values(self):
        import random

        sampler = two_point_sampler(1.0, 2.0, 0.5)
        rng = random.Random(0)
        values = {sampler(rng) for _ in range(100)}
        assert values == {1.0, 2.0}

    def test_probability_respected(self):
        import random

        sampler = two_point_sampler(1.0, 2.0, 0.25)
        rng = random.Random(1)
        n = 4000
        worst = sum(1 for _ in range(n) if sampler(rng) == 2.0)
        assert worst / n == pytest.approx(0.25, abs=0.02)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            two_point_sampler(0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            two_point_sampler(2.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            two_point_sampler(1.0, 2.0, 1.5)


class TestSimulation:
    def test_deterministic_services_give_exact_cycle(self):
        result = simulate_selftimed_line(8, 50, lambda rng: 1.0)
        assert result.mean_cycle_time == pytest.approx(1.0)
        assert result.worst_case_cycle == 1.0

    def test_worst_case_fraction_matches_formula(self):
        p_worst = 0.05
        sampler = two_point_sampler(1.0, 2.0, p_worst)
        for k in (4, 16, 64):
            result = simulate_selftimed_line(
                k, 600, sampler, seed=7, worst_time=2.0
            )
            predicted = worst_case_path_probability(1 - p_worst, k)
            assert result.worst_case_fraction == pytest.approx(predicted, abs=0.08)

    def test_blocking_slower_than_fifo(self):
        sampler = two_point_sampler(1.0, 2.0, 0.1)
        blocking = simulate_selftimed_line(64, 300, sampler, seed=5, blocking=True)
        fifo = simulate_selftimed_line(64, 300, sampler, seed=5, blocking=False)
        assert blocking.mean_cycle_time > fifo.mean_cycle_time

    def test_cycle_time_grows_with_array_length(self):
        """Larger arrays lose more of the self-timing advantage."""
        sampler = two_point_sampler(1.0, 2.0, 0.05)
        short = simulate_selftimed_line(4, 400, sampler, seed=9)
        long = simulate_selftimed_line(128, 400, sampler, seed=9)
        assert long.mean_cycle_time > short.mean_cycle_time

    def test_cycle_between_best_and_worst(self):
        sampler = two_point_sampler(1.0, 3.0, 0.2)
        result = simulate_selftimed_line(32, 300, sampler, seed=2)
        assert result.best_case_cycle <= result.mean_cycle_time <= result.worst_case_cycle

    def test_slowdown_metric(self):
        sampler = two_point_sampler(1.0, 2.0, 0.3)
        result = simulate_selftimed_line(64, 300, sampler, seed=3)
        assert result.slowdown_vs_best > 1.2

    def test_wire_delay_adds_to_cycle(self):
        base = simulate_selftimed_line(16, 200, lambda rng: 1.0)
        wired = simulate_selftimed_line(16, 200, lambda rng: 1.0, wire_delay=0.5)
        assert wired.completion_time > base.completion_time

    def test_reproducible(self):
        sampler = two_point_sampler(1.0, 2.0, 0.1)
        a = simulate_selftimed_line(16, 100, sampler, seed=4)
        b = simulate_selftimed_line(16, 100, sampler, seed=4)
        assert a.completion_time == b.completion_time

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_selftimed_line(0, 10, lambda rng: 1.0)
        with pytest.raises(ValueError):
            simulate_selftimed_line(4, 1, lambda rng: 1.0)
        with pytest.raises(ValueError):
            simulate_selftimed_line(4, 10, lambda rng: 1.0, wire_delay=-1)
