"""The paper's theorems, asserted on concrete sweeps.

These are the headline claims:

* Theorem 2 — H-tree + difference model: size-independent period.
* Theorem 3 — spine + summation model: size-independent period for 1D.
* Fig. 3(a) remark — dissection + summation model: skew grows linearly.
* Theorem 6 — sigma = Omega(W(N)).
"""

import pytest

from repro.analysis.scaling import classify_growth
from repro.core.theorems import (
    fig3a_counterexample_sweep,
    theorem2_sweep,
    theorem3_sweep,
    theorem6_bound,
    theorem6_sweep,
)


class TestTheorem2:
    @pytest.mark.parametrize("topology", ["linear", "mesh", "hex"])
    def test_sigma_zero_for_all_topologies(self, topology):
        records = theorem2_sweep([2, 4, 8], topology=topology)
        assert all(r.sigma == pytest.approx(0.0) for r in records)

    def test_period_constant(self):
        records = theorem2_sweep([2, 4, 8, 16], topology="mesh", delta=1.0, tau=1.0)
        periods = [r.period for r in records]
        assert max(periods) == min(periods) == pytest.approx(2.0)

    def test_tree_depth_grows_but_period_does_not(self):
        records = theorem2_sweep([4, 16], topology="mesh")
        assert records[1].extra["P"] > records[0].extra["P"]
        assert records[1].period == records[0].period


class TestTheorem3:
    def test_sigma_constant(self):
        records = theorem3_sweep([4, 16, 64, 256, 1024])
        sigmas = [r.sigma for r in records]
        assert max(sigmas) == pytest.approx(min(sigmas))

    def test_sigma_value_is_g_of_spacing(self):
        records = theorem3_sweep([8], m=1.0, eps=0.25, spacing=2.0)
        assert records[0].sigma == pytest.approx(1.25 * 2.0)

    def test_growth_classified_constant(self):
        records = theorem3_sweep([4, 8, 16, 32, 64, 128])
        fit = classify_growth([r.size for r in records], [r.sigma for r in records])
        assert fit.law == "constant"


class TestFig3aCounterexample:
    def test_sigma_grows_linearly(self):
        records = fig3a_counterexample_sweep([8, 16, 32, 64, 128])
        fit = classify_growth([r.size for r in records], [r.sigma for r in records])
        assert fit.law == "linear"

    def test_max_s_spans_array(self):
        records = fig3a_counterexample_sweep([64])
        assert records[0].extra["max_s"] >= 32

    def test_dissection_loses_to_spine(self):
        spine = theorem3_sweep([128])[0].sigma
        dissection = fig3a_counterexample_sweep([128])[0].sigma
        assert dissection > 50 * spine


class TestTheorem6:
    def test_bound_formula(self):
        assert theorem6_bound(16.0, beta=0.5) == pytest.approx(0.5 * 16 / 8.0)

    def test_bound_monotone_in_width(self):
        assert theorem6_bound(20, 0.1) > theorem6_bound(10, 0.1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            theorem6_bound(4, beta=0)
        with pytest.raises(ValueError):
            theorem6_bound(-1, beta=0.1)

    def test_sweep_mesh_grows_linear_flat(self):
        records = theorem6_sweep([4, 6, 8], families=["linear", "mesh"])
        linear = [r for r in records if r.label == "t6-linear"]
        mesh_records = [r for r in records if r.label == "t6-mesh"]
        assert max(r.sigma for r in linear) == pytest.approx(
            min(r.sigma for r in linear)
        )
        assert mesh_records[-1].sigma > 1.5 * mesh_records[0].sigma

    def test_sweep_sigma_respects_floor(self):
        for r in theorem6_sweep([4, 8], families=["mesh"]):
            assert r.sigma >= r.extra["theorem6_floor"] - 1e-9

    def test_tree_family_runs(self):
        records = theorem6_sweep([4, 8], families=["tree"])
        assert all(r.extra["bisection_width"] >= 1 for r in records)
