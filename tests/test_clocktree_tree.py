"""Unit tests for the CLK tree structure and its d/s path metrics."""

import pytest

from repro.clocktree.tree import ClockTree
from repro.geometry.point import Point


def small_tree():
    """Root with two subtrees of different depths and edge lengths.

          root(0,0)
          /        \\
       a(2,0)      b(0,3)
        /  \\         \\
    c(3,0) d(2,2)    e(0,6)
    """
    t = ClockTree("root", Point(0, 0))
    t.add_child("root", "a", Point(2, 0))
    t.add_child("root", "b", Point(0, 3))
    t.add_child("a", "c", Point(3, 0))
    t.add_child("a", "d", Point(2, 2))
    t.add_child("b", "e", Point(0, 6))
    return t


class TestConstruction:
    def test_default_length_is_manhattan(self):
        t = small_tree()
        assert t.edge_length("a") == 2
        assert t.edge_length("d") == 2

    def test_explicit_length_overrides(self):
        t = ClockTree("r", Point(0, 0))
        t.add_child("r", "x", Point(1, 0), length=5.0)
        assert t.edge_length("x") == 5.0

    def test_zero_length_allowed(self):
        t = ClockTree("r", Point(0, 0))
        t.add_child("r", "x", Point(0, 0), length=0.0)
        assert t.root_distance("x") == 0.0

    def test_binary_arity_enforced(self):
        t = small_tree()
        with pytest.raises(ValueError):
            t.add_child("a", "z", Point(9, 9))

    def test_relaxed_arity(self):
        t = ClockTree("r", Point(0, 0), max_children=3)
        for i in range(3):
            t.add_child("r", i, Point(i + 1, 0))
        assert len(t.children("r")) == 3

    def test_duplicate_node_rejected(self):
        t = small_tree()
        with pytest.raises(ValueError):
            t.add_child("b", "a", Point(1, 1))

    def test_unknown_parent_rejected(self):
        t = small_tree()
        with pytest.raises(KeyError):
            t.add_child("nope", "x", Point(0, 0))

    def test_negative_length_rejected(self):
        t = small_tree()
        with pytest.raises(ValueError):
            t.add_child("e", "x", Point(0, 7), length=-1)

    def test_root_has_no_parent_edge(self):
        with pytest.raises(ValueError):
            small_tree().edge_length("root")


class TestStructureQueries:
    def test_len_contains_iter(self):
        t = small_tree()
        assert len(t) == 6
        assert "c" in t and "z" not in t
        assert set(iter(t)) == {"root", "a", "b", "c", "d", "e"}

    def test_leaves(self):
        assert set(small_tree().leaves()) == {"c", "d", "e"}

    def test_parent_children(self):
        t = small_tree()
        assert t.parent("c") == "a"
        assert t.parent("root") is None
        assert set(t.children("a")) == {"c", "d"}

    def test_children_map_matches(self):
        t = small_tree()
        cmap = t.children_map()
        assert set(cmap["root"]) == {"a", "b"}
        assert cmap["e"] == []

    def test_depth(self):
        t = small_tree()
        assert t.depth("root") == 0
        assert t.depth("d") == 2

    def test_subtree_nodes(self):
        t = small_tree()
        assert set(t.subtree_nodes("a")) == {"a", "c", "d"}

    def test_validate_passes(self):
        small_tree().validate()


class TestPathMetrics:
    def test_root_distance(self):
        t = small_tree()
        assert t.root_distance("root") == 0
        assert t.root_distance("c") == 3  # 2 + 1
        assert t.root_distance("e") == 6  # 3 + 3

    def test_lca(self):
        t = small_tree()
        assert t.lca("c", "d") == "a"
        assert t.lca("c", "e") == "root"
        assert t.lca("a", "c") == "a"
        assert t.lca("root", "e") == "root"

    def test_path_length_sums_to_lca(self):
        t = small_tree()
        # c: 1 from a; d: 2 from a.
        assert t.path_length("c", "d") == 3
        # c: 3 from root; e: 6 from root.
        assert t.path_length("c", "e") == 9

    def test_path_length_to_self_is_zero(self):
        t = small_tree()
        assert t.path_length("d", "d") == 0

    def test_path_length_ancestor(self):
        t = small_tree()
        assert t.path_length("root", "c") == 3

    def test_path_difference(self):
        t = small_tree()
        assert t.path_difference("c", "e") == 3
        assert t.path_difference("c", "d") == 1

    def test_s_dominates_d(self):
        t = small_tree()
        nodes = t.nodes()
        for a in nodes:
            for b in nodes:
                assert t.path_length(a, b) >= t.path_difference(a, b) - 1e-12

    def test_longest_root_to_leaf(self):
        assert small_tree().longest_root_to_leaf() == 6

    def test_total_wire_length(self):
        assert small_tree().total_wire_length() == 2 + 3 + 1 + 2 + 3

    def test_is_equidistant(self):
        t = ClockTree("r", Point(0, 0))
        t.add_child("r", "a", Point(1, 0))
        t.add_child("r", "b", Point(0, 1))
        assert t.is_equidistant(["a", "b"])
        assert not t.is_equidistant(["r", "a"])
        assert t.is_equidistant([])
