"""ECOSession unit tests: typed edits, dirty sets, and bit-exactness.

The incremental engine's contract: after ANY sequence of edits, every
array, extremum, and verdict it serves is bit-identical to a full
``analyze_slack`` over its mutated design.  These tests exercise each
typed edit, the lazy extremum trackers (including edits that relax the
current worst edge), the external-mutation guard, and the per-step
report's ``eco`` audit block.
"""

import numpy as np
import pytest

from repro.obs.schema import validate_sta_report
from repro.sta.design import design_for_workload, random_design
from repro.sta.eco import ECOSession
from repro.sta.slack import analyze_slack, minimum_feasible_period

ARRAYS = (
    "lag", "sigma_ub", "sigma_lb", "offset_lead",
    "setup_exact", "hold_exact", "setup_bound", "hold_bound",
)


def make_design(**kwargs):
    return design_for_workload("fir", size=5, scheme="serpentine", **kwargs)


def assert_bit_identical(session):
    full = analyze_slack(session.design)
    incremental = session.analysis()
    assert incremental.edges == full.edges
    for name in ARRAYS:
        a, b = getattr(incremental, name), getattr(full, name)
        assert a.tobytes() == b.tobytes(), name
    assert session.worst_setup_slack() == full.worst_setup_slack
    assert session.worst_hold_slack() == full.worst_hold_slack
    for mode in ("exact", "bound"):
        assert session.minimum_feasible_period(mode) == minimum_feasible_period(
            session.design, mode
        ), mode


def test_fresh_session_matches_oracle():
    session = ECOSession(make_design())
    assert_bit_identical(session)
    assert session.edits == []


def test_repad_edge_dirties_one_row():
    session = ECOSession(make_design())
    edge = session.design.edges()[0]
    edit = session.repad_edge(edge, 0.4)
    assert edit.op == "repad_edge"
    assert edit.dirty_rows == 1
    assert edit.edges == len(session.design.edges())
    assert 0.0 < edit.reuse_fraction < 1.0
    assert_bit_identical(session)
    # pad 0 removes the entry instead of storing a zero
    session.repad_edge(edge, 0.0)
    assert edge not in session.design.edge_padding
    assert_bit_identical(session)


def test_retarget_wire_overrides_layout_distance():
    session = ECOSession(make_design())
    edge = session.design.edges()[1]
    lag_before = session.design.edge_lag(edge)
    edit = session.retarget_wire(edge, 50.0)
    assert edit.dirty_rows == 1
    assert session.design.edge_lag(edge) > lag_before
    assert_bit_identical(session)


def test_resize_buffer_dirties_only_subtree_pairs():
    session = ECOSession(make_design())
    tree = session.design.tree
    # a mid-chain node: some COMM pairs inside, some outside its subtree
    node = tree.dense_store.nodes[len(tree) // 2]
    edit = session.resize_buffer(node, 1.7)
    assert 0 < edit.dirty_rows < edit.edges
    assert edit.semantic_dirty_rows <= edit.dirty_rows
    assert_bit_identical(session)


def test_graft_then_resize_above_graft_point():
    session = ECOSession(make_design())
    tree = session.design.tree
    parent = next(n for n in tree.nodes() if len(tree.children(n)) < 2)
    from repro.geometry.point import Point

    edit = session.graft_subtree(
        [(parent, "spare:a", Point(0.5, 0.5), 0.3),
         ("spare:a", "spare:b", Point(1.0, 0.5), 0.3)]
    )
    assert edit.dirty_rows == 0 and edit.reuse_fraction == 1.0
    assert "spare:b" in tree.nodes()
    assert_bit_identical(session)
    # a resize above the graft point must see the new topology
    session.resize_buffer("spare:a", 0.9)
    assert_bit_identical(session)


def test_set_period_is_zero_dirty_and_exact():
    session = ECOSession(make_design())
    period = session.design.period
    edit = session.set_period(period * 1.5)
    assert edit.dirty_rows == 0
    assert session.design.period == period * 1.5
    assert_bit_identical(session)
    session.set_period(period * 0.4)  # likely dirty verdict, still exact
    assert_bit_identical(session)


def test_relaxing_the_worst_edge_rescans_lazily():
    session = ECOSession(make_design())
    analysis = analyze_slack(session.design)
    worst = analysis.edges[int(analysis.setup_exact.argmin())]
    # make it much worse, then relax it back below other edges: both the
    # champion-update and champion-dirtied tracker paths run
    session.retarget_wire(worst, 80.0)
    assert_bit_identical(session)
    session.retarget_wire(worst, 0.0)
    assert_bit_identical(session)
    # and the hold side: pad the current min-lag edge away and back
    hold_worst = analysis.edges[int(analysis.hold_exact.argmin())]
    session.repad_edge(hold_worst, 5.0)
    assert_bit_identical(session)
    session.repad_edge(hold_worst, 0.0)
    assert_bit_identical(session)


def test_apply_dispatch_and_unknown_op():
    session = ECOSession(make_design())
    edge = session.design.edges()[0]
    edit = session.apply("repad_edge", edge=edge, pad=0.2)
    assert edit.op == "repad_edge"
    with pytest.raises(ValueError, match="unknown ECO op"):
        session.apply("delete_cell", cell=edge[0])


def test_invalid_edits_raise():
    session = ECOSession(make_design())
    edge = session.design.edges()[0]
    with pytest.raises(ValueError):
        session.repad_edge(edge, -0.1)
    with pytest.raises(KeyError):
        session.repad_edge(("nope", "nope"), 0.1)
    with pytest.raises(ValueError):
        session.retarget_wire(edge, -1.0)
    with pytest.raises(ValueError):
        session.set_period(0.0)


def test_external_mutation_is_detected():
    session = ECOSession(make_design())
    session.design.array.comm.add_node("intruder")
    with pytest.raises(RuntimeError, match="mutated outside"):
        session.repad_edge(session.design.edges()[0], 0.1)

    session = ECOSession(make_design())
    from repro.geometry.point import Point

    parent = next(
        n
        for n in session.design.tree.nodes()
        if len(session.design.tree.children(n)) < 2
    )
    session.design.tree.add_child(parent, "intruder", Point(0.0, 0.0))
    with pytest.raises(RuntimeError, match="mutated outside"):
        session.set_period(session.design.period * 1.1)


def test_report_carries_eco_block_and_validates():
    session = ECOSession(make_design())
    first = session.report()
    assert first.eco is None
    assert validate_sta_report(first.to_dict()) == []
    edge = session.design.edges()[0]
    session.repad_edge(edge, 0.3)
    report = session.report()
    assert report.eco is not None
    assert report.eco["edit"] == "repad_edge"
    assert report.eco["dirty_rows"] == 1
    assert 0.0 <= report.eco["reuse_fraction"] <= 1.0
    assert validate_sta_report(report.to_dict()) == []


def test_counts_and_summary_match_full_analysis():
    session = ECOSession(make_design())
    session.set_period(session.design.period * 0.5)  # force violations
    full = analyze_slack(session.design)
    counts = session.counts()
    assert counts["edges"] == len(full.edges)
    assert counts["stale"] == int(np.count_nonzero(full.stale_mask))
    assert counts["race"] == int(np.count_nonzero(full.race_mask))
    assert session.timing_clean() == full.timing_clean
    assert session.robust_clean() == full.robust_clean
    summary = session.summary()
    assert summary["worst_setup_slack"] == full.worst_setup_slack


def test_wire_override_blocks_simulator():
    session = ECOSession(make_design())
    session.retarget_wire(session.design.edges()[0], 2.0)
    with pytest.raises(ValueError, match="wire_overrides"):
        session.design.simulator()


def test_random_design_session_stays_exact_through_mixed_edits():
    session = ECOSession(random_design(7, clean=True))
    edges = session.design.edges()
    session.repad_edge(edges[0], 0.25)
    session.retarget_wire(edges[-1], 1.5)
    node = session.design.tree.dense_store.nodes[-1]
    session.resize_buffer(node, 2.0)
    session.set_period(session.design.period * 1.2)
    assert_bit_identical(session)
    assert len(session.edits) == 4
