"""Tests for two-phase (master-slave) execution."""

import pytest

from repro.arrays.systolic import build_fir_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.core.disciplines import TwoPhaseDiscipline
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.two_phase import (
    min_two_phase_period,
    phase_separation,
    two_phase_simulator,
)


def coflow_setup(period):
    """FIR with the clock running WITH the data — races under single-phase."""
    program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
    buffered = BufferedClockTree(
        spine_clock(program.array, order=["src", 0, 1, 2, "snk"]),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=3),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, period, program.array.comm.nodes()
    )
    return program, schedule


class TestPhaseSeparation:
    def test_half_period_plus_gap(self):
        d = TwoPhaseDiscipline(nonoverlap=0.5)
        assert phase_separation(10.0, d) == 5.5

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            phase_separation(0.0, TwoPhaseDiscipline(nonoverlap=0.1))


class TestRaceImmunityByDiscipline:
    def test_single_phase_races_two_phase_does_not(self):
        program, schedule = coflow_setup(period=10.0)
        single = ClockedArraySimulator(program, schedule, delta=0.5)
        assert single.hold_hazards() != []
        discipline = TwoPhaseDiscipline(nonoverlap=0.5)
        two = two_phase_simulator(program, schedule, discipline, delta=0.5)
        assert two.hold_hazards() == []

    def test_two_phase_run_matches_lockstep(self):
        program, schedule = coflow_setup(period=10.0)
        discipline = TwoPhaseDiscipline(nonoverlap=0.5)
        result = two_phase_simulator(program, schedule, discipline, delta=0.5).run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())

    def test_immunity_requires_enough_separation(self):
        """With a *tiny* period the separation shrinks below the skew and
        even two-phase races — matching the discipline's analytic check."""
        program, schedule = coflow_setup(period=1.0)
        discipline = TwoPhaseDiscipline(nonoverlap=0.0)
        sim = two_phase_simulator(program, schedule, discipline, delta=0.0)
        skew = schedule.max_skew(program.array.communicating_pairs())
        assert phase_separation(1.0, discipline) < skew
        assert sim.hold_hazards() != []


class TestPeriodPrice:
    def test_counterflow_setup_bound_doubles_plus_gap(self):
        """Against the data flow, setup governs: exactly twice the
        single-phase minimum plus the gaps."""
        program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
        buffered = BufferedClockTree(
            spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=3),
        )
        schedule = ClockSchedule.from_buffered_tree(
            buffered, 10.0, program.array.comm.nodes()
        )
        discipline = TwoPhaseDiscipline(nonoverlap=0.5)
        base = ClockedArraySimulator(program, schedule, delta=0.5).minimum_safe_period()
        two_phase = min_two_phase_period(program, schedule, discipline, delta=0.5)
        assert two_phase == pytest.approx(2.0 * (base + 0.5))

    def test_coflow_hold_bound_governs(self):
        """With the data flow, the hold side sets the floor: the separation
        must grow to cover the skew lead."""
        program, schedule = coflow_setup(period=10.0)
        discipline = TwoPhaseDiscipline(nonoverlap=0.0)
        needed = min_two_phase_period(program, schedule, discipline, delta=0.0)
        max_lead = max(
            schedule.offset(v) - schedule.offset(u)
            for u, v in program.array.comm.edges()
        )
        assert needed == pytest.approx(2.0 * max_lead, rel=0.01)

    def test_running_at_min_period_is_clean(self):
        program, probe = coflow_setup(period=10.0)
        discipline = TwoPhaseDiscipline(nonoverlap=0.5)
        needed = min_two_phase_period(program, probe, discipline, delta=0.5)
        # Rebuild the schedule at the computed period (same offsets).
        schedule = ClockSchedule(
            {c: probe.offset(c) for c in probe.cells()}, needed * 1.02
        )
        result = two_phase_simulator(program, schedule, discipline, delta=0.5).run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())

    def test_below_min_period_fails(self):
        program, probe = coflow_setup(period=10.0)
        discipline = TwoPhaseDiscipline(nonoverlap=0.5)
        needed = min_two_phase_period(program, probe, discipline, delta=0.5)
        schedule = ClockSchedule(
            {c: probe.offset(c) for c in probe.cells()}, needed * 0.7
        )
        result = two_phase_simulator(program, schedule, discipline, delta=0.5).run()
        assert not result.clean
