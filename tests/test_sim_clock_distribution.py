"""Unit tests for clock tick schedules."""

import pytest

from repro.arrays.topologies import linear_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule


class TestClockSchedule:
    def test_tick_times_arithmetic(self):
        sched = ClockSchedule({"a": 0.5, "b": 1.5}, period=10.0)
        assert sched.tick_time("a", 0) == 0.5
        assert sched.tick_time("a", 3) == 30.5
        assert sched.tick_time("b", 1) == 11.5

    def test_skew_is_offset_difference(self):
        sched = ClockSchedule({"a": 0.5, "b": 2.0}, period=5.0)
        assert sched.skew("a", "b") == 1.5
        assert sched.max_skew([("a", "b")]) == 1.5

    def test_ideal_schedule_zero_skew(self):
        sched = ClockSchedule.ideal(["a", "b", "c"], period=2.0)
        assert sched.max_skew([("a", "b"), ("b", "c")]) == 0.0

    def test_from_buffered_tree(self):
        array = linear_array(8)
        buffered = BufferedClockTree(
            spine_clock(array),
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=2),
        )
        sched = ClockSchedule.from_buffered_tree(buffered, 5.0, array.comm.nodes())
        for cell in range(8):
            assert sched.offset(cell) == buffered.arrival(cell)
        assert sched.max_skew(array.communicating_pairs()) == pytest.approx(
            buffered.max_skew(array.communicating_pairs())
        )

    def test_offsets_monotone_along_spine(self):
        array = linear_array(8)
        buffered = BufferedClockTree(spine_clock(array))
        sched = ClockSchedule.from_buffered_tree(buffered, 5.0, array.comm.nodes())
        offsets = [sched.offset(i) for i in range(8)]
        assert offsets == sorted(offsets)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockSchedule({"a": 0.0}, period=0.0)
        with pytest.raises(ValueError):
            ClockSchedule({"a": -1.0}, period=1.0)
        with pytest.raises(ValueError):
            ClockSchedule({"a": 0.0}, period=1.0).tick_time("a", -1)

    def test_cells_iterable(self):
        sched = ClockSchedule({"a": 0.0, "b": 1.0}, period=1.0)
        assert set(sched.cells()) == {"a", "b"}
