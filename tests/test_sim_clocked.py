"""Integration tests: systolic programs under skewed clocks.

The functional heart of the reproduction: a clocked array matches the ideal
lockstep semantics exactly when A5's period bound (and the hold condition)
are respected, and fails detectably when they are not.
"""

import pytest

from repro.arrays.systolic import (
    build_fir_array,
    build_matvec_array,
    build_odd_even_sorter,
)
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator, TimingViolation


def fir_program():
    return build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])


def schedule_for(program, order, period, eps=0.2, seed=3):
    buffered = BufferedClockTree(
        spine_clock(program.array, order=order),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=eps, seed=seed),
    )
    return ClockSchedule.from_buffered_tree(
        buffered, period, program.array.comm.nodes()
    )


class TestCleanExecution:
    def test_ideal_schedule_matches_lockstep(self):
        program = fir_program()
        sched = ClockSchedule.ideal(program.array.comm.nodes(), period=10.0)
        sim = ClockedArraySimulator(program, sched, delta=1.0)
        result = sim.run()
        assert result.clean
        assert result.result == program.run_lockstep()

    def test_counterflow_clock_is_clean_at_safe_period(self):
        # Clock running against the data direction: classic safe regime.
        program = fir_program()
        sched = schedule_for(program, ["snk", 2, 1, 0, "src"], period=10.0)
        sim = ClockedArraySimulator(program, sched, delta=1.0)
        assert sim.hold_hazards() == []
        result = sim.run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())

    def test_coflow_clock_needs_delta_above_skew(self):
        # Clock with the data: race-through unless delta exceeds the
        # neighbor skew ("adding delay to circuits", Section I).
        program = fir_program()
        sched = schedule_for(program, ["src", 0, 1, 2, "snk"], period=10.0)
        risky = ClockedArraySimulator(program, sched, delta=1.0)
        assert risky.hold_hazards() != []
        padded = ClockedArraySimulator(program, sched, delta=3.0)
        assert padded.hold_hazards() == []
        result = padded.run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())

    def test_sorter_under_skewed_clock(self):
        program = build_odd_even_sorter([5.0, 1.0, 4.0, 2.0, 3.0])
        buffered = BufferedClockTree(
            spine_clock(program.array),
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=1),
        )
        sched = ClockSchedule.from_buffered_tree(
            buffered, 50.0, program.array.comm.nodes()
        )
        # Bidirectional data: one direction co-flows with the clock, so
        # delta must exceed the neighbor skew; period covers the other side.
        sim = ClockedArraySimulator(program, sched, delta=4.0)
        assert sim.hold_hazards() == []
        result = sim.run()
        assert result.clean
        assert result.result == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_matvec_under_skewed_clock(self):
        program = build_matvec_array([[1, 2], [3, 4]], [1, 1])
        sched = schedule_for(
            program, ["snk", 1, ("a", 1), 0, ("a", 0), "ysrc"], period=20.0
        )
        sim = ClockedArraySimulator(program, sched, delta=1.0)
        result = sim.run()
        assert result.clean
        assert result.result == pytest.approx([3.0, 7.0])


class TestViolations:
    def test_short_period_causes_stale_reads(self):
        program = fir_program()
        sched = schedule_for(program, ["snk", 2, 1, 0, "src"], period=1.5)
        sim = ClockedArraySimulator(program, sched, delta=1.0)
        assert sim.minimum_safe_period() > 1.5
        result = sim.run()
        assert not result.clean
        assert all(v.kind == "stale" for v in result.violations)

    def test_race_through_detected(self):
        program = fir_program()
        sched = schedule_for(program, ["src", 0, 1, 2, "snk"], period=10.0)
        sim = ClockedArraySimulator(program, sched, delta=0.1)
        result = sim.run()
        assert any(v.kind == "race" for v in result.violations)

    def test_wrong_results_accompany_violations(self):
        program = fir_program()
        sched = schedule_for(program, ["snk", 2, 1, 0, "src"], period=1.2)
        result = ClockedArraySimulator(program, sched, delta=1.0).run()
        assert result.result != program.run_lockstep()

    def test_minimum_safe_period_is_tight(self):
        program = fir_program()
        order = ["snk", 2, 1, 0, "src"]
        sched_probe = schedule_for(program, order, period=100.0)
        safe = ClockedArraySimulator(program, sched_probe, delta=1.0).minimum_safe_period()
        above = ClockedArraySimulator(
            program, schedule_for(program, order, period=safe * 1.05), delta=1.0
        ).run()
        below = ClockedArraySimulator(
            program, schedule_for(program, order, period=safe * 0.8), delta=1.0
        ).run()
        assert above.clean
        assert not below.clean

    def test_violation_metadata(self):
        v = TimingViolation(("a", "b"), receiver_tick=3, expected_sender_tick=2, actual_sender_tick=3)
        assert v.kind == "race"
        v2 = TimingViolation(("a", "b"), 3, 2, 1)
        assert v2.kind == "stale"


class TestConstructionErrors:
    def test_missing_clock_for_cell(self):
        program = fir_program()
        sched = ClockSchedule({"src": 0.0}, period=1.0)
        with pytest.raises(ValueError, match="no clock schedule"):
            ClockedArraySimulator(program, sched)

    def test_rejects_negative_delta(self):
        program = fir_program()
        sched = ClockSchedule.ideal(program.array.comm.nodes(), period=1.0)
        with pytest.raises(ValueError):
            ClockedArraySimulator(program, sched, delta=-1)

    def test_rejects_zero_ticks(self):
        program = fir_program()
        sched = ClockSchedule.ideal(program.array.comm.nodes(), period=1.0)
        with pytest.raises(ValueError):
            ClockedArraySimulator(program, sched).run(ticks=0)
