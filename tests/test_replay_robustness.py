"""Regression tests: ``summarize_trace`` must digest traces from other
repo versions — unknown ``(cat, kind)`` pairs, span events, malformed
payloads — without crashing, and the skew/violation views must quietly
skip what they cannot interpret."""

import pytest

from repro.obs.replay import _as_float, _as_int, summarize_trace
from repro.obs.spans import SpanTracer
from repro.obs.trace import RecordingTracer, TraceEvent


def _ev(t, cat, kind, cell=None, **data):
    return TraceEvent(t=t, cat=cat, kind=kind, cell=cell, data=data)


class TestLenientReaders:
    def test_as_int(self):
        assert _as_int(3) == 3
        assert _as_int(3.0) == 3
        assert _as_int("3") == 3
        assert _as_int(3.5) is None
        assert _as_int("x") is None
        assert _as_int(None) is None
        assert _as_int(True) is None  # bools are not ticks
        assert _as_int([1]) is None

    def test_as_float(self):
        assert _as_float(2.5) == 2.5
        assert _as_float("2.5") == 2.5
        assert _as_float(None) is None
        assert _as_float(True) is None
        assert _as_float("nope") is None


class TestUnknownEvents:
    def test_unknown_cat_kind_pairs_are_counted_not_fatal(self):
        events = [
            _ev(0.0, "tick", "fire", cell=(0, 0), tick=0),
            _ev(1.0, "future", "mystery", payload={"deep": [1, 2]}),
            _ev(2.0, "future", "mystery"),
        ]
        summary = summarize_trace(events)
        assert summary.events == 3
        rows = {(cat, kind): n for cat, kind, n, _f, _l in summary.category_rows}
        assert rows[("future", "mystery")] == 2
        assert rows[("tick", "fire")] == 1

    def test_span_events_are_summarised_without_interpretation(self):
        tracer = RecordingTracer()
        spans = SpanTracer(tracer)
        with spans.span("outer"):
            with spans.span("inner"):
                pass
        summary = summarize_trace(list(tracer.events))
        rows = {(cat, kind): n for cat, kind, n, _f, _l in summary.category_rows}
        assert rows[("span", "start")] == 2
        assert rows[("span", "end")] == 2
        assert summary.skew_samples == 0  # spans never feed the skew view
        assert summary.violation_timeline == []

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.events == 0
        assert summary.t_min == 0.0 and summary.t_max == 0.0
        assert summary.category_rows == []


class TestMalformedPayloads:
    def test_fire_events_without_tick_are_skipped_from_skew(self):
        events = [
            _ev(0.0, "tick", "fire", cell=(0, 0), tick=0),
            _ev(0.5, "tick", "fire", cell=(0, 1), tick=0),
            _ev(1.0, "tick", "fire", cell=(1, 0)),           # no tick key
            _ev(1.5, "tick", "fire", cell=(1, 1), tick="??"),  # junk tick
        ]
        summary = summarize_trace(events)
        assert summary.skew_samples == 1  # only the well-formed pair
        assert summary.max_skew == pytest.approx(0.5)

    def test_hybrid_steps_with_junk_start_are_skipped(self):
        events = [
            _ev(0.0, "hybrid", "step", step=0, start=0.0),
            _ev(0.2, "hybrid", "step", step=0, start=0.3),
            _ev(0.4, "hybrid", "step", step=1, start="soon"),
            _ev(0.6, "hybrid", "step", step=1),
        ]
        summary = summarize_trace(events)
        assert summary.skew_samples == 1
        assert summary.max_skew == pytest.approx(0.3)

    def test_violations_with_non_numeric_tick_use_sentinel(self):
        events = [
            _ev(1.0, "violation", "stale", receiver_tick=4),
            _ev(1.1, "violation", "race", receiver_tick="corrupt"),
            _ev(1.2, "violation", "stale"),  # no tick at all
        ]
        summary = summarize_trace(events)
        timeline = {tick: (stale, race) for tick, stale, race in summary.violation_timeline}
        assert timeline[4] == (1, 0)
        assert timeline[-1] == (1, 1)  # sentinel bucket for the malformed two
        assert summary.total_violations == 3

    def test_boolean_tick_is_not_a_tick(self):
        events = [
            _ev(0.0, "tick", "fire", tick=True),
            _ev(0.1, "tick", "fire", tick=True),
        ]
        summary = summarize_trace(events)
        assert summary.skew_samples == 0

    def test_mixed_known_and_unknown_preserves_known_views(self):
        events = [
            _ev(0.0, "tick", "fire", cell=(0, 0), tick=0),
            _ev(0.4, "tick", "fire", cell=(0, 1), tick=0),
            _ev(0.5, "exotic", "thing", blob=object.__class__.__name__),
            _ev(0.6, "violation", "stale", receiver_tick=2),
        ]
        summary = summarize_trace(events)
        assert summary.skew_samples == 1
        assert summary.total_violations == 1
        assert summary.t_max == pytest.approx(0.6)
