"""Finite-channel (backpressure) semantics of the self-timed stack.

Covers the capacity-k contract end to end: the ``channel_capacity=None``
default stays byte-identical to the historical unbounded model (golden
values pinned below), every capacity agrees across the event-driven
engine, the scalar bounded recurrence, and the compiled marked-graph
kernel, zero-token cycles deadlock eagerly, and the clocked layer's
occupancy model (``channel_depths`` / ``channel_overflows`` /
capacity-aware ``minimum_safe_period``) brackets wave-pipelined
schedules from both sides.
"""

import math

import pytest

from repro.arrays.systolic import (
    build_fir_array,
    build_mesh_matmul,
    build_odd_even_sorter,
)
from repro.obs.critpath import critical_path_from_trace
from repro.obs.trace import RecordingTracer
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.dataflow import (
    ChannelDeadlockError,
    SelfTimedProgramSimulator,
    hashed_service,
)


def _fir_program():
    return build_fir_array(
        [0.5, -0.25, 1.0, 0.125],
        [1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0],
    )


def _fir_sim(capacity):
    return SelfTimedProgramSimulator(
        _fir_program(),
        service=hashed_service(1.0, 3.0, 0.2, seed=7),
        wire_delay=0.25,
        channel_capacity=capacity,
    )


def _sorter_sim(capacity):
    return SelfTimedProgramSimulator(
        build_odd_even_sorter([3.0, -1.0, 4.0, -1.5, 9.0, -2.6, 5.0, -3.5]),
        service=hashed_service(1.0, 2.0, 0.3, seed=11),
        wire_delay=0.5,
        channel_capacity=capacity,
    )


class TestGoldenUnbounded:
    """``channel_capacity=None`` must stay byte-identical to the
    pre-backpressure simulator: these values were recorded against the
    unbounded implementation before capacities existed."""

    def test_fir_golden(self):
        run = _fir_sim(None).run()
        assert repr(run.makespan) == "48.25"
        assert run.events_processed == 297
        assert run.result == [
            0.5, -1.25, 3.0, -4.625, 6.25, -7.875,
            9.5, -11.125, 8.25, -7.125, -1.0,
        ]
        assert run.channel_capacity is None
        assert run.stall_time is None
        assert run.max_occupancy is None

    def test_fir_golden_recurrences(self):
        sim = _fir_sim(None)
        assert repr(sim.recurrence_makespan()) == "48.25"
        assert repr(sim.recurrence_makespan_scalar()) == "48.25"

    def test_sorter_golden(self):
        run = _sorter_sim(None).run()
        assert repr(run.makespan) == "19.5"
        assert run.events_processed == 198
        assert run.result == [-3.5, -2.6, -1.5, -1.0, 3.0, 4.0, 5.0, 9.0]


class TestCapacitySemantics:
    @pytest.mark.parametrize("capacity", [1, 2, 3, 5])
    def test_three_paths_agree_fir(self, capacity):
        sim = _fir_sim(capacity)
        run = sim.run()
        assert run.makespan == sim.recurrence_makespan()
        assert run.makespan == sim.recurrence_makespan_scalar()

    @pytest.mark.parametrize("capacity", [2, 3, 5])
    def test_three_paths_agree_cyclic(self, capacity):
        sim = _sorter_sim(capacity)
        run = sim.run()
        assert run.makespan == sim.recurrence_makespan()
        assert run.makespan == sim.recurrence_makespan_scalar()

    def test_results_unchanged_by_capacity(self):
        reference = _fir_sim(None).run().result
        for capacity in (1, 2, 4):
            assert _fir_sim(capacity).run().result == reference

    def test_makespan_monotone_in_capacity(self):
        spans = [_fir_sim(c).run().makespan for c in (1, 2, 3, 5, None)]
        assert spans == sorted(spans, reverse=True)

    def test_wide_capacity_bitwise_unbounded(self):
        unbounded = _fir_sim(None)
        unbounded_run = unbounded.run()
        wide = _fir_sim(_fir_program().cycles)
        wide_run = wide.run()
        assert wide_run.makespan == unbounded_run.makespan
        assert wide_run.finish_times == unbounded_run.finish_times
        assert wide.recurrence_makespan() == unbounded.recurrence_makespan()

    def test_capacity_one_cyclic_deadlocks_everywhere(self):
        with pytest.raises(ChannelDeadlockError):
            _sorter_sim(1)

    def test_capacity_one_cyclic_compiled_deadlocks(self):
        sim = _sorter_sim(None)
        program = build_odd_even_sorter(
            [3.0, -1.0, 4.0, -1.5, 9.0, -2.6, 5.0, -3.5]
        )
        with pytest.raises(ChannelDeadlockError):
            sim.compiled_recurrence().makespan(
                hashed_service(1.0, 2.0, 0.3, seed=11),
                0.5,
                program.cycles,
                capacity=1,
            )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            _fir_sim(0)
        with pytest.raises(ValueError):
            _fir_sim(-2)


class TestStallAccounting:
    def test_bounded_run_reports_stalls_and_occupancy(self):
        run = _fir_sim(1).run()
        assert run.channel_capacity == 1
        assert run.max_occupancy is not None and run.max_occupancy <= 1
        assert run.stall_time is not None
        assert all(v >= 0.0 for v in run.stall_time.values())
        # Capacity 1 on this workload genuinely stalls producers.
        assert run.total_stall_time > 0.0

    def test_occupancy_bounded_by_capacity(self):
        for capacity in (1, 2, 3):
            run = _fir_sim(capacity).run()
            assert run.max_occupancy <= capacity

    def test_throughput_property(self):
        run = _fir_sim(2).run()
        assert run.throughput == pytest.approx(
            run.waves / run.makespan
        )

    def test_trace_carries_credit_causes(self):
        tracer = RecordingTracer()
        sim = SelfTimedProgramSimulator(
            _fir_program(),
            service=hashed_service(1.0, 3.0, 0.2, seed=7),
            wire_delay=0.25,
            channel_capacity=1,
            tracer=tracer,
        )
        run = sim.run()
        causes = {
            e.data.get("cause")
            for e in tracer.events
            if e.cat == "dataflow" and e.kind == "fire"
        }
        assert "credit" in causes
        cp = critical_path_from_trace(tracer.events)
        assert cp.exact
        assert cp.makespan == run.makespan

    def test_critical_path_method_rejects_bounded(self):
        with pytest.raises(ValueError):
            _fir_sim(2).critical_path()


class TestClockedOccupancy:
    def _wave_pipelined_sim(self, lag=3.0, period=1.0):
        # A two-cell chain whose receiver's clock trails the sender's by
        # several periods: legal (hold-safe), but multiple generations
        # are in flight on the wire — the wave-pipelined regime.
        program = build_fir_array([1.0, 2.0], [1.0, -1.0, 2.0, -2.0, 3.0])
        cells = program.array.comm.nodes()
        offsets = {c: float(i) * lag for i, c in enumerate(cells)}
        schedule = ClockSchedule(offsets, period=period)
        return program, ClockedArraySimulator(program, schedule, delta=0.25)

    def test_channel_depths_match_steady_formula(self):
        _program, sim = self._wave_pipelined_sim(lag=3.0, period=1.0)
        depths = sim.channel_depths()
        # Receiver trails by 3.0 at period 1.0: 1 + ceil(3.0 / 1.0) = 4.
        assert max(depths.values()) == 4

    def test_channel_overflows_bracket_capacity(self):
        _program, sim = self._wave_pipelined_sim(lag=3.0, period=1.0)
        assert sim.channel_overflows(4) == []
        shallow = sim.channel_overflows(2)
        assert shallow
        assert all(depth > 2 for _edge, _gen, depth in shallow)

    def test_capacity_aware_msp_is_finite_and_genuine(self):
        _program, sim = self._wave_pipelined_sim(lag=3.0, period=1.0)
        plain = sim.minimum_safe_period()
        capped = sim.minimum_safe_period(channel_capacity=4)
        assert math.isfinite(capped)
        # d/(c-1) = 3.0/3 = 1.0 dominates this schedule's setup need.
        assert capped == pytest.approx(max(plain, 1.0))

    def test_capacity_one_unschedulable_when_trailing(self):
        _program, sim = self._wave_pipelined_sim(lag=3.0, period=1.0)
        assert sim.minimum_safe_period(channel_capacity=1) == math.inf

    def test_capacity_ignored_without_trailing_receiver(self):
        program = build_fir_array([1.0, 2.0], [1.0, -1.0, 2.0])
        cells = program.array.comm.nodes()
        schedule = ClockSchedule({c: 0.0 for c in cells}, period=5.0)
        sim = ClockedArraySimulator(program, schedule, delta=0.25)
        assert sim.minimum_safe_period(
            channel_capacity=1
        ) == sim.minimum_safe_period()
        assert max(sim.channel_depths().values()) <= 1
        assert sim.channel_overflows(1) == []

    def test_rejects_bad_capacity(self):
        _program, sim = self._wave_pipelined_sim()
        with pytest.raises(ValueError):
            sim.minimum_safe_period(channel_capacity=0)
        with pytest.raises(ValueError):
            sim.channel_overflows(0)


class TestMeshWorkload:
    def test_matmul_capacity_sweep_agrees(self):
        a = [[1.0, 2.0], [3.0, -1.0]]
        b = [[0.5, -0.5], [1.5, 2.5]]
        program = build_mesh_matmul(a, b)
        service = hashed_service(1.0, 3.0, 0.25, seed=3)
        reference = SelfTimedProgramSimulator(
            program, service=service, wire_delay=0.5
        ).run()
        prev = math.inf
        for capacity in (1, 2, 3):
            sim = SelfTimedProgramSimulator(
                program, service=service, wire_delay=0.5,
                channel_capacity=capacity,
            )
            run = sim.run()
            assert run.makespan == sim.recurrence_makespan()
            assert run.makespan == sim.recurrence_makespan_scalar()
            assert run.result == reference.result
            assert run.makespan <= prev
            assert run.makespan >= reference.makespan
            prev = run.makespan
