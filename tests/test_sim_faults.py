"""Tests for fault injection — breaking assumption A8 and watching
pipelined clocking fail (Section VI's opening premise)."""

import pytest

from repro.arrays.systolic import build_fir_array
from repro.arrays.topologies import mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.delay.variation import NoVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator
from repro.sim.faults import (
    JitteredSchedule,
    slow_subtree,
    summarize_violations,
)


def clean_program_and_schedule(period=10.0):
    program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
    buffered = BufferedClockTree(
        spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
        wire_variation=NoVariation(),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, period, program.array.comm.nodes()
    )
    return program, schedule


class TestJitteredSchedule:
    def test_stays_within_amplitude(self):
        _p, base = clean_program_and_schedule()
        jittered = JitteredSchedule(base, amplitude=0.5, seed=1)
        for cell in base.cells():
            for k in range(5):
                assert abs(jittered.tick_time(cell, k) - base.tick_time(cell, k)) <= 0.5

    def test_deterministic(self):
        _p, base = clean_program_and_schedule()
        a = JitteredSchedule(base, 0.5, seed=1)
        b = JitteredSchedule(base, 0.5, seed=1)
        cell = next(iter(base.cells()))
        assert a.tick_time(cell, 3) == b.tick_time(cell, 3)

    def test_seed_changes_jitter(self):
        _p, base = clean_program_and_schedule()
        a = JitteredSchedule(base, 0.5, seed=1)
        b = JitteredSchedule(base, 0.5, seed=2)
        cells = list(base.cells())
        assert any(
            a.tick_time(c, k) != b.tick_time(c, k) for c in cells for k in range(4)
        )

    def test_tick_times_monotone(self):
        _p, base = clean_program_and_schedule()
        jittered = JitteredSchedule(base, amplitude=2.0, seed=3)
        cell = next(iter(base.cells()))
        times = [jittered.tick_time(cell, k) for k in range(20)]
        assert times == sorted(times)

    def test_rejects_excessive_amplitude(self):
        _p, base = clean_program_and_schedule(period=4.0)
        with pytest.raises(ValueError):
            JitteredSchedule(base, amplitude=2.0)

    def test_small_jitter_absorbed_by_margin(self):
        program, base = clean_program_and_schedule(period=12.0)
        jittered = JitteredSchedule(base, amplitude=0.3, seed=4)
        sim = ClockedArraySimulator(program, jittered, delta=1.0)
        result = sim.run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())

    def test_large_jitter_breaks_pipelined_clocking(self):
        """A8 broken beyond the margins: the run is no longer clean — the
        Section VI premise for switching to hybrid synchronization."""
        program, base = clean_program_and_schedule(period=4.0)
        sim_clean = ClockedArraySimulator(program, base, delta=1.0)
        assert sim_clean.run().clean
        jittered = JitteredSchedule(base, amplitude=1.9, seed=7)
        result = ClockedArraySimulator(program, jittered, delta=1.0).run()
        assert not result.clean


class TestSlowSubtree:
    def test_shifts_only_affected_cells(self):
        array = mesh(4, 4)
        buffered = BufferedClockTree(htree_for_array(array), wire_variation=NoVariation())
        cells = array.comm.nodes()
        # Slow the subtree hanging off one child of the root.
        victim = buffered.tree.children(buffered.tree.root)[0]
        schedule = slow_subtree(buffered, victim, extra_delay=2.0, cells=cells, period=10.0)
        affected = set(buffered.tree.subtree_nodes(victim))
        for cell in cells:
            expected = buffered.arrival(cell) + (2.0 if cell in affected else 0.0)
            assert schedule.offset(cell) == pytest.approx(expected)

    def test_creates_skew_on_perfect_htree(self):
        array = mesh(4, 4)
        buffered = BufferedClockTree(htree_for_array(array), wire_variation=NoVariation())
        assert buffered.max_skew(array.communicating_pairs()) == pytest.approx(0.0)
        victim = buffered.tree.children(buffered.tree.root)[0]
        schedule = slow_subtree(buffered, victim, 2.0, array.comm.nodes(), 10.0)
        assert schedule.max_skew(array.communicating_pairs()) == pytest.approx(2.0)

    def test_rejects_unknown_node(self):
        array = mesh(2, 2)
        buffered = BufferedClockTree(htree_for_array(array))
        with pytest.raises(KeyError):
            slow_subtree(buffered, "bogus", 1.0, array.comm.nodes(), 5.0)

    def test_rejects_negative_delay(self):
        array = mesh(2, 2)
        buffered = BufferedClockTree(htree_for_array(array))
        with pytest.raises(ValueError):
            slow_subtree(buffered, buffered.tree.root, -1.0, array.comm.nodes(), 5.0)


class TestViolationSummary:
    def test_empty_is_clean(self):
        summary = summarize_violations([])
        assert summary.clean
        assert summary.first_failure_tick == -1

    def test_aggregates_by_edge_and_kind(self):
        from repro.sim.clocked import TimingViolation

        violations = [
            TimingViolation(("a", "b"), 2, 1, 0),   # stale
            TimingViolation(("a", "b"), 3, 2, 1),   # stale
            TimingViolation(("c", "d"), 5, 4, 5),   # race
        ]
        summary = summarize_violations(violations)
        assert summary.total == 3
        assert summary.stale == 2
        assert summary.race == 1
        assert summary.edges_affected == 2
        assert summary.first_failure_tick == 2
        assert summary.last_failure_tick == 5
        assert summary.worst_edge == (("a", "b"), 2)
        assert summary.per_cell == {"b": 2, "d": 1}

    def test_to_dict_is_json_exportable(self):
        import json

        from repro.sim.clocked import TimingViolation

        violations = [
            TimingViolation(("a", "b"), 2, 1, 0),
            TimingViolation(("c", "d"), 5, 4, 5),
        ]
        exported = json.loads(json.dumps(summarize_violations(violations).to_dict()))
        assert exported["total"] == 2
        assert exported["first_failure_tick"] == 2
        assert exported["last_failure_tick"] == 5
        assert exported["per_cell"] == {"b": 1, "d": 1}

    def test_integrates_with_simulator(self):
        program, base = clean_program_and_schedule(period=1.5)
        result = ClockedArraySimulator(program, base, delta=1.0).run()
        summary = summarize_violations(result.violations)
        assert not summary.clean
        assert summary.stale > 0
