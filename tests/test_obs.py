"""Unit tests for the observability layer: tracing, metrics, profiling,
and the mini JSON-schema validator."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import Profiler, profiled
from repro.obs.schema import (
    BENCHMARK_RESULT_SCHEMA,
    validate,
    validate_benchmark_result,
    validate_trace_event,
)
from repro.obs.trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    load_trace,
    read_trace,
)


class TestRecordingTracer:
    def test_records_events(self):
        tracer = RecordingTracer()
        tracer.event(1.0, "tick", "fire", cell="a", tick=3)
        tracer.event(2.0, "violation", "stale", cell="b", receiver_tick=4)
        assert len(tracer.events) == 2
        assert tracer.events[0] == TraceEvent(
            t=1.0, cat="tick", kind="fire", cell="a", data={"tick": 3}
        )

    def test_filters_and_counts(self):
        tracer = RecordingTracer()
        for k in range(3):
            tracer.event(float(k), "tick", "fire", cell=k, tick=k)
        tracer.event(5.0, "violation", "race", cell=1)
        assert len(tracer.by_category("tick")) == 3
        assert len(tracer.by_kind("violation", "race")) == 1
        assert tracer.counts() == {("tick", "fire"): 3, ("violation", "race"): 1}

    def test_span_records_wall_time(self):
        tracer = RecordingTracer()
        with tracer.span("phase", "work", t=7.0, label="x"):
            pass
        (event,) = tracer.events
        assert event.cat == "phase" and event.kind == "work"
        assert event.t == 7.0
        assert event.data["label"] == "x"
        assert event.data["wall_s"] >= 0.0


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.event(1.0, "tick", "fire")  # must not raise or record
        with tracer.span("a", "b"):
            pass

    def test_shared_instance(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled


class TestJsonlTracer:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.event(0.5, "tick", "fire", cell=(1, 2), tick=0)
            tracer.event(1.5, "violation", "stale", cell="c3", edge=("a", "b"))
        events = load_trace(path)
        assert len(events) == 2
        # Tuple cell ids survive the JSON round trip.
        assert events[0].cell == (1, 2)
        assert events[0].data == {"tick": 0}
        assert events[1].data["edge"] == ["a", "b"]
        assert events[1].t == 1.5

    def test_lines_are_schema_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.event(0.0, "engine", "dispatch", wall_s=0.001, queue_depth=2)
        with open(path) as fh:
            obj = json.loads(fh.readline())
        assert validate_trace_event(obj) == []

    def test_write_after_close_raises(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "t.jsonl"))
        tracer.close()
        with pytest.raises(ValueError):
            tracer.event(0.0, "a", "b")

    def test_counts_written_events(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "t.jsonl"))
        for k in range(5):
            tracer.event(float(k), "tick", "fire")
        tracer.close()
        assert tracer.events_written == 5
        assert len(list(read_trace(tracer.path))) == 5


class TestCounterGauge:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_envelope(self):
        g = Gauge("depth")
        assert g.samples == 0
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert g.value == 7.0
        assert g.minimum == 1.0
        assert g.maximum == 7.0
        assert g.samples == 3


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("t", edges=[1.0, 2.0])
        h.observe(0.5)   # <= 1.0
        h.observe(1.0)   # exactly on an edge -> that bucket
        h.observe(1.001)  # (1.0, 2.0]
        h.observe(2.0)   # on the last edge -> in range
        h.observe(2.5)   # overflow
        assert h.counts == [2, 2, 1]
        assert h.total == 5
        assert h.mean == pytest.approx((0.5 + 1.0 + 1.001 + 2.0 + 2.5) / 5)

    def test_labels_and_nonzero(self):
        h = Histogram("t", edges=[1.0, 2.0])
        assert h.bucket_labels() == ["<= 1", "(1, 2]", "> 2"]
        h.observe(5.0)
        assert h.nonzero_buckets() == [("> 2", 1)]

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("t", edges=[])
        with pytest.raises(ValueError):
            Histogram("t", edges=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("t", edges=[1.0, 1.0])


class TestMetricsRegistry:
    def test_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_bool_and_to_dict(self):
        reg = MetricsRegistry()
        assert not reg
        reg.counter("events").inc(2)
        reg.gauge("depth").set(4.0)
        reg.histogram("lat", edges=[1.0]).observe(0.5)
        assert reg
        snapshot = reg.to_dict()
        assert snapshot["counters"] == {"events": 2}
        assert snapshot["gauges"]["depth"]["max"] == 4.0
        assert snapshot["histograms"]["lat"]["counts"] == [1, 0]
        json.dumps(snapshot)  # fully serialisable

    def test_render_rows(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        rows = reg.render_rows()
        assert rows == [("n", "counter", "1")]


class TestProfiler:
    def test_nesting_builds_paths(self):
        prof = Profiler()
        with prof.profiled("outer"):
            with prof.profiled("inner"):
                pass
            with prof.profiled("inner"):
                pass
        paths = [s.path for s in prof.report()]
        assert paths == ["outer", "outer/inner"]
        assert prof.report()[1].calls == 2
        # The parent's time includes its children's.
        assert prof.total_s("outer") >= prof.total_s("outer/inner")

    def test_stack_unwinds_on_error(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.profiled("phase"):
                raise RuntimeError("boom")
        assert prof.current_path == ""
        assert prof.report()[0].calls == 1

    def test_rejects_slash_in_name(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.profiled("a/b"):
                pass

    def test_module_level_profiled_none_is_noop(self):
        with profiled("anything", None) as p:
            assert p is None

    def test_to_dict(self):
        prof = Profiler()
        with prof.profiled("x"):
            pass
        d = prof.to_dict()
        assert d["x"]["calls"] == 1
        assert d["x"]["total_s"] >= 0.0


class TestSchemaValidator:
    def test_type_mismatch(self):
        assert validate(3, {"type": "string"}) == ["$: expected string, got int"]
        assert validate("x", {"type": ["string", "null"]}) == []
        assert validate(None, {"type": ["string", "null"]}) == []

    def test_bool_is_not_number(self):
        assert validate(True, {"type": "number"}) != []
        assert validate(True, {"type": "boolean"}) == []

    def test_required_and_nested(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "array", "items": {"type": "integer"}}},
        }
        assert validate({"a": [1, 2]}, schema) == []
        assert "missing required key 'a'" in validate({}, schema)[0]
        assert "$.a[1]" in validate({"a": [1, "x"]}, schema)[0]

    def test_unsupported_type_raises(self):
        with pytest.raises(ValueError):
            validate(1, {"type": "float"})

    def test_benchmark_result_schema(self):
        good = {
            "name": "x",
            "title": "X",
            "headers": ["a", "b"],
            "rows": [[1, 2.5], ["s", None]],
            "meta": {"emitted_at": 1.0, "repro_version": "1.0.0"},
        }
        assert validate_benchmark_result(good) == []
        assert validate(good, BENCHMARK_RESULT_SCHEMA) == []
        ragged = dict(good, rows=[[1]])
        assert any("1 cells" in e for e in validate_benchmark_result(ragged))
        missing = {k: v for k, v in good.items() if k != "meta"}
        assert validate_benchmark_result(missing) != []
