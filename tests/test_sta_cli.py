"""CLI tests for ``python -m repro sta``: exit codes and JSON schema."""

import json

from repro.cli import main
from repro.obs.schema import validate_sta_report


def run_cli(argv):
    try:
        return main(argv)
    except SystemExit as exc:  # argparse errors surface as SystemExit(2)
        return int(exc.code or 0)


def test_sta_clean_exits_zero_and_emits_schema_valid_json(tmp_path, capsys):
    out = tmp_path / "sta.json"
    code = run_cli(["sta", "--workload", "fir", "--size", "4", "--json", str(out)])
    assert code == 0
    reports = json.loads(out.read_text())
    assert isinstance(reports, list) and len(reports) == 1
    assert validate_sta_report(reports[0]) == []
    assert reports[0]["verdict"] == "clean"
    assert "fir" in capsys.readouterr().out


def test_sta_all_workloads_emits_four_reports(tmp_path):
    out = tmp_path / "sta.json"
    code = run_cli(["sta", "--size", "3", "--json", str(out)])
    assert code == 0
    reports = json.loads(out.read_text())
    assert len(reports) == 4
    assert all(validate_sta_report(r) == [] for r in reports)


def test_sta_infeasible_period_exits_one(tmp_path):
    out = tmp_path / "sta.json"
    code = run_cli(
        ["sta", "--workload", "matmul", "--size", "3",
         "--period", "1e-6", "--json", str(out)]
    )
    assert code == 1
    (report,) = json.loads(out.read_text())
    assert report["verdict"] == "violations"
    assert report["counts"]["stale"] > 0
    assert validate_sta_report(report) == []


def test_sta_bad_configuration_exits_two():
    assert run_cli(["sta", "--workload", "fir", "--delta", "-1.0"]) == 2


def test_sta_unknown_workload_rejected():
    assert run_cli(["sta", "--workload", "quantum"]) == 2


def test_sta_renders_drc_and_flagged_edge_tables(capsys):
    code = run_cli(
        ["sta", "--workload", "matmul", "--size", "3",
         "--period", "1e-6", "--verbose"]
    )
    assert code == 1
    text = capsys.readouterr().out
    assert "design rules" in text
    assert "flags" in text  # the offending-edge table is shown
    assert "stale" in text
