"""CLI tests for ``python -m repro sta``: exit codes and JSON schema."""

import json

from repro.cli import main
from repro.obs.schema import validate_sta_report


def run_cli(argv):
    try:
        return main(argv)
    except SystemExit as exc:  # argparse errors surface as SystemExit(2)
        return int(exc.code or 0)


def test_sta_clean_exits_zero_and_emits_schema_valid_json(tmp_path, capsys):
    out = tmp_path / "sta.json"
    code = run_cli(["sta", "--workload", "fir", "--size", "4", "--json", str(out)])
    assert code == 0
    reports = json.loads(out.read_text())
    assert isinstance(reports, list) and len(reports) == 1
    assert validate_sta_report(reports[0]) == []
    assert reports[0]["verdict"] == "clean"
    assert "fir" in capsys.readouterr().out


def test_sta_all_workloads_emits_four_reports(tmp_path):
    out = tmp_path / "sta.json"
    code = run_cli(["sta", "--size", "3", "--json", str(out)])
    assert code == 0
    reports = json.loads(out.read_text())
    assert len(reports) == 4
    assert all(validate_sta_report(r) == [] for r in reports)


def test_sta_infeasible_period_exits_one(tmp_path):
    out = tmp_path / "sta.json"
    code = run_cli(
        ["sta", "--workload", "matmul", "--size", "3",
         "--period", "1e-6", "--json", str(out)]
    )
    assert code == 1
    (report,) = json.loads(out.read_text())
    assert report["verdict"] == "violations"
    assert report["counts"]["stale"] > 0
    assert validate_sta_report(report) == []


def test_sta_bad_configuration_exits_two():
    assert run_cli(["sta", "--workload", "fir", "--delta", "-1.0"]) == 2


def test_sta_unknown_workload_rejected():
    assert run_cli(["sta", "--workload", "quantum"]) == 2


def test_sta_renders_drc_and_flagged_edge_tables(capsys):
    code = run_cli(
        ["sta", "--workload", "matmul", "--size", "3",
         "--period", "1e-6", "--verbose"]
    )
    assert code == 1
    text = capsys.readouterr().out
    assert "design rules" in text
    assert "flags" in text  # the offending-edge table is shown
    assert "stale" in text


def write_eco_script(path, steps):
    path.write_text(json.dumps(steps))
    return str(path)


def eco_identity_script(tmp_path):
    """Edits that provably keep a clean design clean: repad to the current
    pad, retarget to the current layout distance, raise the period."""
    from repro.sta.design import design_for_workload

    d = design_for_workload("fir", size=4, scheme="serpentine", seed=0)
    e = d.edges()[0]
    parent = next(n for n in d.tree.nodes() if len(d.tree.children(n)) < 2)
    return write_eco_script(tmp_path / "eco.json", [
        {"op": "repad_edge", "edge": [str(e[0]), str(e[1])],
         "pad": d.edge_padding.get(e, 0.0)},
        {"op": "retarget_wire", "edge": [str(e[0]), str(e[1])],
         "length": d.array.layout.distance(e[0], e[1])},
        {"op": "graft_subtree", "nodes": [
            {"parent": str(parent), "node": "spare:0",
             "x": 0.0, "y": 0.0, "length": 0.5}]},
        {"op": "set_period", "period": d.period * 1.2},
    ])


def test_sta_eco_emits_one_report_per_step(tmp_path, capsys):
    script = eco_identity_script(tmp_path)
    out = tmp_path / "reports.json"
    code = run_cli(
        ["sta", "--workload", "fir", "--size", "4",
         "--eco", script, "--json", str(out)]
    )
    assert code == 0
    reports = json.loads(out.read_text())
    assert len(reports) == 5  # initial + four steps
    for i, report in enumerate(reports):
        assert validate_sta_report(report) == []
        assert report["verdict"] == "clean"
        if i == 0:
            assert "eco" not in report
        else:
            assert report["eco"]["dirty_rows"] <= report["counts"]["edges"]
    assert reports[1]["eco"]["edit"] == "repad_edge"
    assert reports[4]["eco"]["edit"] == "set_period"
    assert "reuse" in capsys.readouterr().out


def test_sta_eco_requires_single_workload(tmp_path, capsys):
    script = eco_identity_script(tmp_path)
    code = run_cli(["sta", "--eco", script])
    assert code == 2
    assert "single --workload" in capsys.readouterr().err


def test_sta_eco_rejects_unknown_targets(tmp_path, capsys):
    script = write_eco_script(
        tmp_path / "bad.json",
        [{"op": "repad_edge", "edge": ["nope", "nada"], "pad": 0.1}],
    )
    code = run_cli(["sta", "--workload", "fir", "--size", "4", "--eco", script])
    assert code == 2
    assert "unknown cell" in capsys.readouterr().err


def test_sta_eco_rejects_unknown_op(tmp_path, capsys):
    script = write_eco_script(
        tmp_path / "bad.json", [{"op": "teleport", "x": 1}]
    )
    code = run_cli(["sta", "--workload", "fir", "--size", "4", "--eco", script])
    assert code == 2
    assert "unknown ECO op" in capsys.readouterr().err
