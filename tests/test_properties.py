"""Property-based tests (hypothesis) on the core invariants.

The invariants under test are the ones the paper's reasoning leans on:

* metric identities of the clock tree (s >= d >= 0, symmetry, the
  h1/h2 decomposition of Section III);
* the physical skew model's bracketing inequality;
* lockstep executor determinism;
* sorter correctness over arbitrary inputs;
* separator balance over random trees;
* random-walk statistics of inverter strings.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.systolic import build_fir_array, build_odd_even_sorter
from repro.clocktree.tree import ClockTree
from repro.core.models import PhysicalModel
from repro.delay.buffer import InverterPairModel
from repro.geometry.point import Point
from repro.graphs.separators import tree_edge_separator
from repro.sim.inverter import InverterString


# ----------------------------------------------------------------------
# random tree strategy
# ----------------------------------------------------------------------
@st.composite
def random_clock_trees(draw):
    """A random binary tree with random positive edge lengths."""
    n = draw(st.integers(min_value=2, max_value=24))
    rng = random.Random(draw(st.integers(0, 2**30)))
    tree = ClockTree(0, Point(0, 0))
    open_slots = [0, 0]  # each node may appear twice (binary)
    for node in range(1, n):
        parent = rng.choice(open_slots)
        open_slots.remove(parent)
        length = rng.uniform(0.0, 5.0)
        tree.add_child(parent, node, Point(rng.uniform(-9, 9), rng.uniform(-9, 9)), length=length)
        open_slots.extend([node, node])
    return tree


@given(random_clock_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_tree_metric_identities(tree, data):
    nodes = tree.nodes()
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    s = tree.path_length(a, b)
    d = tree.path_difference(a, b)
    # s >= d >= 0 (the Section III inequality chain)
    assert s >= d - 1e-9
    assert d >= 0
    # symmetry
    assert tree.path_length(b, a) == s
    assert tree.path_difference(b, a) == d
    # h1/h2 decomposition: s = h1 + h2, d = |h1 - h2|
    lca = tree.lca(a, b)
    h1 = tree.root_distance(a) - tree.root_distance(lca)
    h2 = tree.root_distance(b) - tree.root_distance(lca)
    assert s == (h1 + h2) or abs(s - (h1 + h2)) < 1e-9
    assert abs(d - abs(h1 - h2)) < 1e-9


@given(random_clock_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_lca_is_common_ancestor(tree, data):
    nodes = tree.nodes()
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    lca = tree.lca(a, b)

    def ancestors(node):
        out = []
        while node is not None:
            out.append(node)
            node = tree.parent(node)
        return out

    assert lca in ancestors(a)
    assert lca in ancestors(b)
    # deepest common: its children can't both be ancestors
    common = set(ancestors(a)) & set(ancestors(b))
    assert tree.depth(lca) == max(tree.depth(c) for c in common)


@given(
    random_clock_trees(),
    st.floats(min_value=0.1, max_value=3.0),
    st.floats(min_value=0.0, max_value=0.09),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_physical_model_bracketing(tree, m, eps, data):
    """eps*s <= m*d + eps*s <= (m+eps)*s for every node pair."""
    model = PhysicalModel(m=m, eps=eps)
    nodes = tree.nodes()
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    sigma = model.skew_bound(tree, a, b)
    s = tree.path_length(a, b)
    assert eps * s - 1e-9 <= sigma <= (m + eps) * s + 1e-9


@given(random_clock_trees(), st.data())
@settings(max_examples=40, deadline=None)
def test_separator_balance_on_random_trees(tree, data):
    nodes = tree.nodes()
    if len(nodes) < 3:
        return
    k = data.draw(st.integers(min_value=2, max_value=len(nodes)))
    marked = set(data.draw(st.permutations(nodes))[:k])
    result = tree_edge_separator(tree.children_map(), tree.root, marked)
    # Lemma 5's bound plus the internal-marked-node slack (see module doc).
    assert result.worst_fraction <= 0.75 + 1e-9
    assert result.below | result.above == marked


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=24))
@settings(max_examples=50, deadline=None)
def test_sorter_sorts_anything(values):
    got = build_odd_even_sorter(values).run_lockstep()
    assert got == sorted(values)


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=6),
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=10),
)
@settings(max_examples=30, deadline=None)
def test_fir_linearity_in_impulses(weights, xs):
    """FIR output equals the direct convolution sum for arbitrary input."""
    got = build_fir_array(weights, xs).run_lockstep()
    k, n = len(weights), len(xs)
    expected = [
        sum(weights[j] * (xs[t - j] if 0 <= t - j < n else 0.0) for j in range(k))
        for t in range(n + k - 1)
    ]
    assert len(got) == len(expected)
    assert all(abs(a - b) <= 1e-6 * max(1.0, abs(b)) for a, b in zip(got, expected))


@given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=2**20))
@settings(max_examples=40, deadline=None)
def test_inverter_string_invariants(n, seed):
    chip = InverterString(n, InverterPairModel(nominal=1.0, bias=0.01, variance=1e-4, seed=seed))
    # equipotential covers both traversals, so it dominates 2n * min stage.
    assert chip.equipotential_cycle() >= 2 * n * min(
        min(s.delay_rise, s.delay_fall) for s in chip.stages
    ) - 1e-9
    # the endpoint of the walk never exceeds the worst prefix.
    assert chip.total_discrepancy() <= chip.max_prefix_discrepancy() + 1e-12
    # pipelined period at least twice the slowest stage.
    assert chip.pipelined_cycle() >= 2 * chip.max_stage_delay() - 1e-9


@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_lockstep_determinism(n, seed):
    rng = random.Random(seed)
    values = [rng.uniform(-10, 10) for _ in range(n)]
    a = build_odd_even_sorter(values).run_lockstep()
    b = build_odd_even_sorter(values).run_lockstep()
    assert a == b
