"""Unit tests for rectilinear routing helpers and visit orders."""

import pytest

from repro.geometry.point import Point, polyline_length
from repro.geometry.routing import l_route, manhattan_route_length, snake_order, spiral_order


class TestLRoute:
    def test_is_shortest(self):
        a, b = Point(0, 0), Point(3, 2)
        assert polyline_length(l_route(a, b)) == a.manhattan(b)

    def test_corner_choice(self):
        a, b = Point(0, 0), Point(3, 2)
        assert l_route(a, b, horizontal_first=True)[1] == Point(3, 0)
        assert l_route(a, b, horizontal_first=False)[1] == Point(0, 2)

    def test_collinear_has_no_corner(self):
        assert len(l_route(Point(0, 0), Point(5, 0))) == 2
        assert len(l_route(Point(0, 0), Point(0, 5))) == 2

    def test_same_point(self):
        assert polyline_length(l_route(Point(1, 1), Point(1, 1))) == 0

    def test_manhattan_route_length(self):
        assert manhattan_route_length(Point(0, 0), Point(2, 5)) == 7


class TestSnakeOrder:
    def test_visits_every_cell_once(self):
        order = snake_order(3, 4)
        assert len(order) == 12
        assert len(set(order)) == 12

    def test_consecutive_cells_adjacent(self):
        order = snake_order(5, 3)
        for (r1, c1), (r2, c2) in zip(order, order[1:]):
            assert abs(r1 - r2) + abs(c1 - c2) == 1

    def test_alternating_direction(self):
        order = snake_order(2, 3)
        assert order == [(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            snake_order(0, 3)


class TestSpiralOrder:
    def test_visits_every_cell_once(self):
        order = spiral_order(4, 5)
        assert len(order) == 20
        assert len(set(order)) == 20

    def test_consecutive_cells_adjacent(self):
        order = spiral_order(4, 4)
        for (r1, c1), (r2, c2) in zip(order, order[1:]):
            assert abs(r1 - r2) + abs(c1 - c2) == 1

    def test_single_row_and_column(self):
        assert spiral_order(1, 4) == [(0, 0), (0, 1), (0, 2), (0, 3)]
        assert spiral_order(4, 1) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_starts_at_origin_going_right(self):
        assert spiral_order(3, 3)[:3] == [(0, 0), (0, 1), (0, 2)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            spiral_order(3, 0)
