"""Tests for the greedy clock-tree adversary."""

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.optimize import greedy_clock_tree, max_pair_path_length
from repro.clocktree.spine import spine_clock
from repro.core.lower_bound import prove_skew_lower_bound


class TestGreedyTree:
    def test_covers_all_cells_and_is_binary(self):
        array = mesh(5, 5)
        tree = greedy_clock_tree(array)
        tree.validate()
        assert all(c in tree for c in array.comm.nodes())
        assert all(len(tree.children(n)) <= 2 for n in tree.nodes())

    def test_cells_are_leaves(self):
        array = mesh(3, 3)
        tree = greedy_clock_tree(array)
        for cell in array.comm.nodes():
            assert tree.children(cell) == []

    def test_single_cell(self):
        array = linear_array(1)
        tree = greedy_clock_tree(array)
        assert 0 in tree

    def test_deterministic(self):
        array = mesh(4, 4)
        a = max_pair_path_length(greedy_clock_tree(array), array)
        b = max_pair_path_length(greedy_clock_tree(array), array)
        assert a == b

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            greedy_clock_tree(mesh(2, 2), neighbor_candidates=0)


class TestGreedyVsTheBound:
    def test_mesh_max_s_grows_linearly(self):
        """Even a search-based adversary obeys the Omega(n) law."""
        values = []
        for n in (4, 8, 16):
            array = mesh(n, n)
            values.append(max_pair_path_length(greedy_clock_tree(array), array))
        assert values[1] >= 1.6 * values[0]
        assert values[2] >= 1.6 * values[1]

    def test_certificate_validates_on_greedy_tree(self):
        array = mesh(8, 8)
        cert = prove_skew_lower_bound(greedy_clock_tree(array), array, beta=0.1)
        cert.check()

    def test_loses_to_spine_on_linear(self):
        """Locality-greedy merging builds a dissection-like tree: good
        clustering is NOT good clocking for 1D arrays — the spine wins."""
        array = linear_array(64)
        greedy_s = max_pair_path_length(greedy_clock_tree(array), array)
        spine_s = max_pair_path_length(spine_clock(array), array)
        assert spine_s == pytest.approx(1.0)
        assert greedy_s > 10 * spine_s

    def test_competitive_with_fixed_schemes_on_mesh(self):
        from repro.clocktree.builders import serpentine_clock
        from repro.clocktree.htree import htree_for_array

        array = mesh(8, 8)
        greedy_s = max_pair_path_length(greedy_clock_tree(array), array)
        fixed_best = min(
            max_pair_path_length(htree_for_array(array), array),
            max_pair_path_length(serpentine_clock(array), array),
        )
        assert greedy_s <= 1.5 * fixed_best
