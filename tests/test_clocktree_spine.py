"""Unit tests for spine/folded/comb clocking (Figs. 4-6, Theorem 3)."""

import pytest

from repro.arrays.topologies import linear_array
from repro.clocktree.spine import (
    comb_linear_array,
    folded_linear_array,
    spine_clock,
    tapped_trunk,
)
from repro.geometry.point import Point


class TestSpineClock:
    def test_neighbor_s_equals_spacing(self):
        array = linear_array(32, spacing=1.5)
        t = spine_clock(array)
        assert all(
            t.path_length(a, b) == pytest.approx(1.5)
            for a, b in array.communicating_pairs()
        )

    def test_constant_in_size(self):
        for n in (8, 64, 512):
            array = linear_array(n)
            t = spine_clock(array)
            max_s = max(t.path_length(a, b) for a, b in array.communicating_pairs())
            assert max_s == pytest.approx(1.0)

    def test_far_cells_have_long_path(self):
        array = linear_array(100)
        t = spine_clock(array)
        assert t.path_length(0, 99) == pytest.approx(99.0)

    def test_custom_order(self):
        array = linear_array(4)
        t = spine_clock(array, order=[3, 2, 1, 0])
        # Root is at cell 3's end now; neighbor s unchanged.
        assert t.path_length(3, 2) == pytest.approx(1.0)
        assert t.root_distance(3) <= t.root_distance(0)

    def test_tap_length_adds_to_s(self):
        array = linear_array(4)
        t = spine_clock(array, tap_length=0.5)
        assert t.path_length(0, 1) == pytest.approx(2.0)  # 1 + 2 taps of 0.5

    def test_binary(self):
        spine_clock(linear_array(16)).validate()

    def test_rejects_empty(self):
        array = linear_array(1)
        array.comm  # exists
        with pytest.raises(ValueError):
            spine_clock(array, order=[])


class TestTappedTrunk:
    def test_two_taps_share_station(self):
        trunk = [Point(0, 0), Point(1, 0), Point(2, 0)]
        taps = [("a", 1, Point(1, 1), 1.0), ("b", 1, Point(1, -1), 1.0)]
        t = tapped_trunk(trunk, taps)
        # a and b tap the same station: s = 1 + 1 = 2 (via zero-length bus).
        assert t.path_length("a", "b") == pytest.approx(2.0)
        t.validate()

    def test_many_taps_one_station_stays_binary(self):
        trunk = [Point(0, 0), Point(1, 0)]
        taps = [(f"c{i}", 1, Point(1, float(i)), float(i)) for i in range(5)]
        t = tapped_trunk(trunk, taps)
        t.validate()
        assert all(len(t.children(n)) <= 2 for n in t.nodes())

    def test_zero_length_bus_does_not_change_s(self):
        trunk = [Point(0, 0), Point(1, 0)]
        taps = [(f"c{i}", 1, Point(1, 0), 0.0) for i in range(4)]
        t = tapped_trunk(trunk, taps)
        assert t.path_length("c0", "c3") == pytest.approx(0.0)

    def test_rejects_empty_trunk(self):
        with pytest.raises(ValueError):
            tapped_trunk([], [])


class TestFolded:
    def test_host_near_both_ends(self):
        array, t = folded_linear_array(16)
        assert t.path_length("host", 0) <= 3.0
        assert t.path_length("host", 15) <= 3.0

    def test_all_communicating_pairs_bounded(self):
        for n in (8, 32, 128):
            array, t = folded_linear_array(n)
            max_s = max(t.path_length(a, b) for a, b in array.communicating_pairs())
            assert max_s <= 3.0, n

    def test_fold_point_cells_share_column(self):
        array, _t = folded_linear_array(10)
        assert array.layout[4].x == array.layout[5].x

    def test_host_in_comm_graph(self):
        array, _t = folded_linear_array(8)
        assert array.comm.has_edge("host", 0)
        assert array.comm.has_edge(7, "host")

    def test_odd_length(self):
        array, t = folded_linear_array(9)
        array.validate()
        t.validate()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            folded_linear_array(1)


class TestComb:
    def test_aspect_ratio_controlled(self):
        array_tall, _ = comb_linear_array(64, tooth_height=16)
        array_flat, _ = comb_linear_array(64, tooth_height=2)
        assert array_tall.layout.aspect_ratio < array_flat.layout.aspect_ratio

    def test_neighbors_stay_adjacent(self):
        array, _t = comb_linear_array(60, tooth_height=5)
        assert array.max_communication_distance() == pytest.approx(1.0)

    def test_clock_follows_data_constant_s(self):
        array, t = comb_linear_array(60, tooth_height=5)
        max_s = max(t.path_length(a, b) for a, b in array.communicating_pairs())
        assert max_s == pytest.approx(1.0)

    def test_well_spaced(self):
        array, _t = comb_linear_array(48, tooth_height=4)
        assert array.layout.is_well_spaced()

    def test_partial_last_tooth(self):
        array, t = comb_linear_array(30, tooth_height=4)
        assert array.size == 30
        t.validate()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            comb_linear_array(0, 2)
        with pytest.raises(ValueError):
            comb_linear_array(8, 0)
