"""Scalar-vs-batch equivalence for the O(1)-LCA path-metric kernels.

The batched kernels (`path_metrics_batch`, `lca_batch`,
`skew_bound_batch`, `BufferedClockTree.skew_batch`) must agree with the
scalar reference paths on *every* tree, not just the benchmark meshes —
hypothesis builds random trees (random arity, random attachment order,
zero-length edges included) and checks each pair both ways.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays.topologies import mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.tree import ClockTree
from repro.core.models import (
    DifferenceModel,
    PhysicalModel,
    SkewModel,
    SummationModel,
    max_skew_bound,
    max_skew_bound_scalar,
    max_skew_lower_bound,
    max_skew_lower_bound_scalar,
)
from repro.geometry.point import Point


@st.composite
def tree_and_pairs(draw):
    """A random ClockTree plus a random list of node pairs."""
    n = draw(st.integers(min_value=1, max_value=32))
    max_children = draw(st.integers(min_value=1, max_value=3))
    tree = ClockTree(0, Point(0.0, 0.0), max_children=max_children)
    open_slots = {0: max_children}
    for node in range(1, n):
        parent = draw(st.sampled_from(sorted(open_slots)))
        x = draw(st.integers(min_value=-8, max_value=8))
        y = draw(st.integers(min_value=-8, max_value=8))
        length = draw(
            st.floats(min_value=0.0, max_value=16.0, allow_nan=False)
        )
        tree.add_child(parent, node, Point(float(x), float(y)), length=length)
        open_slots[node] = max_children
        open_slots[parent] -= 1
        if open_slots[parent] == 0:
            del open_slots[parent]
    nodes = tree.nodes()
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            min_size=0,
            max_size=24,
        )
    )
    return tree, pairs


class TestPathMetricsBatch:
    @given(tree_and_pairs())
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_path_metrics(self, tp):
        tree, pairs = tp
        d, s = tree.path_metrics_batch(pairs)
        assert len(d) == len(s) == len(pairs)
        for i, (a, b) in enumerate(pairs):
            assert abs(d[i] - tree.path_difference(a, b)) <= 1e-9
            assert abs(s[i] - tree.path_length(a, b)) <= 1e-9
            # s >= d >= 0 must survive batching too.
            assert s[i] >= d[i] >= 0.0 or abs(s[i] - d[i]) <= 1e-9

    @given(tree_and_pairs())
    @settings(max_examples=80, deadline=None)
    def test_lca_batch_matches_scalar(self, tp):
        tree, pairs = tp
        assert tree.lca_batch(pairs) == [tree.lca(a, b) for a, b in pairs]

    @given(tree_and_pairs())
    @settings(max_examples=40, deadline=None)
    def test_skew_bounds_match_scalar(self, tp):
        tree, pairs = tp
        models = [
            DifferenceModel(m=2.0),
            DifferenceModel(f=lambda d: d * d),
            SummationModel(m=1.5, eps=0.25),
            SummationModel(g=lambda s: 3.0 * s + 1.0),
            PhysicalModel(m=2.0, eps=0.5),
        ]
        for model in models:
            upper = model.skew_bound_batch(tree, pairs)
            lower = model.skew_lower_bound_batch(tree, pairs)
            for i, (a, b) in enumerate(pairs):
                assert abs(upper[i] - model.skew_bound(tree, a, b)) <= 1e-9
                assert abs(lower[i] - model.skew_lower_bound(tree, a, b)) <= 1e-9
            assert abs(max_skew_bound(tree, pairs, model)
                       - max_skew_bound_scalar(tree, pairs, model)) <= 1e-9
            assert abs(max_skew_lower_bound(tree, pairs, model)
                       - max_skew_lower_bound_scalar(tree, pairs, model)) <= 1e-9

    def test_empty_pairs(self):
        tree = ClockTree("r", Point(0, 0))
        d, s = tree.path_metrics_batch([])
        assert len(d) == len(s) == 0
        assert tree.lca_batch([]) == []
        assert max_skew_bound(tree, [], PhysicalModel()) == 0.0
        assert max_skew_lower_bound(tree, iter([]), PhysicalModel()) == 0.0

    def test_generator_pairs_accepted(self):
        array = mesh(4, 4)
        tree = htree_for_array(array)
        pairs = array.communicating_pairs()
        model = PhysicalModel()
        assert max_skew_bound(tree, iter(pairs), model) == max_skew_bound(
            tree, pairs, model
        )

    def test_batch_arrays_are_read_only(self):
        array = mesh(4, 4)
        tree = htree_for_array(array)
        d, s = tree.path_metrics_batch(array.communicating_pairs())
        for arr in (d, s):
            try:
                arr[0] = -1.0
            except ValueError:
                continue
            raise AssertionError("memoized metric array is writable")


class TestIndexInvalidation:
    def test_add_child_invalidates_index_and_memo(self):
        array = mesh(4, 4)
        tree = htree_for_array(array)
        pairs = array.communicating_pairs()
        before = max_skew_bound(tree, pairs, PhysicalModel())
        assert before == max_skew_bound_scalar(tree, pairs, PhysicalModel())
        leaf = tree.leaves()[0]
        tree.add_child(leaf, "grafted", tree.position(leaf), length=7.0)
        grafted_pairs = pairs + [("grafted", tree.root)]
        after = max_skew_bound(tree, grafted_pairs, PhysicalModel())
        assert after == max_skew_bound_scalar(tree, grafted_pairs, PhysicalModel())
        assert after > before

    def test_mutated_pair_list_is_recomputed(self):
        # The memo keys on the list object; mutating it in place (with a
        # changed endpoint) must fall back to a fresh translation.
        array = mesh(3, 3)
        tree = htree_for_array(array)
        pairs = list(array.communicating_pairs())
        d1, _ = tree.path_metrics_batch(pairs)
        first = pairs[0]
        pairs[0] = (tree.root, tree.root)
        d2, _ = tree.path_metrics_batch(pairs)
        assert d2[0] == 0.0
        pairs[0] = first
        d3, _ = tree.path_metrics_batch(pairs)
        assert d3[0] == d1[0]


class TestBufferedBatch:
    def test_skew_batch_matches_scalar(self):
        array = mesh(6, 6)
        tree = htree_for_array(array)
        buffered = BufferedClockTree(tree)
        pairs = array.communicating_pairs()
        for rising in (True, False):
            batch = buffered.skew_batch(pairs, rising=rising)
            for i, (a, b) in enumerate(pairs):
                assert batch[i] == buffered.skew(a, b, rising=rising)
            assert buffered.max_skew(pairs, rising=rising) == buffered.max_skew_scalar(
                pairs, rising=rising
            )

    def test_resample_rebuilds_vectors(self):
        array = mesh(4, 4)
        tree = htree_for_array(array)
        buffered = BufferedClockTree(tree)
        pairs = array.communicating_pairs()
        before = buffered.max_skew(pairs)
        buffered.resample(seed=99)
        after = buffered.max_skew(pairs)
        assert after == buffered.max_skew_scalar(pairs)
        assert before == before  # no exception path; values may coincide

    def test_empty_pairs(self):
        tree = ClockTree("r", Point(0, 0))
        buffered = BufferedClockTree(tree)
        assert buffered.max_skew([]) == 0.0


class TestGenericFallback:
    def test_custom_model_uses_scalar_fallback(self):
        class WeirdModel(SkewModel):
            def skew_bound(self, tree, a, b):
                return float(tree.depth(a) + tree.depth(b))

        array = mesh(3, 3)
        tree = htree_for_array(array)
        pairs = array.communicating_pairs()
        model = WeirdModel()
        batch = model.skew_bound_batch(tree, pairs)
        assert isinstance(batch, np.ndarray)
        for i, (a, b) in enumerate(pairs):
            assert batch[i] == model.skew_bound(tree, a, b)
        assert max_skew_bound(tree, pairs, model) == max_skew_bound_scalar(
            tree, pairs, model
        )
        # The base lower bound is 0 everywhere.
        assert max_skew_lower_bound(tree, pairs, model) == 0.0
