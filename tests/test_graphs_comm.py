"""Unit tests for the COMM graph (assumption A1)."""

import pytest

from repro.graphs.comm import CommGraph


def path_graph(n):
    return CommGraph(edges=[(i, i + 1) for i in range(n - 1)])


class TestConstruction:
    def test_nodes_and_edges(self):
        g = CommGraph(edges=[(0, 1), (1, 2)], nodes=[5])
        assert g.node_count == 4
        assert g.edge_count == 2
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            CommGraph(edges=[(1, 1)])

    def test_add_bidirectional(self):
        g = CommGraph()
        g.add_bidirectional("a", "b")
        assert g.has_edge("a", "b") and g.has_edge("b", "a")
        assert g.edge_count == 2

    def test_duplicate_edge_idempotent(self):
        g = CommGraph(edges=[(0, 1), (0, 1)])
        assert g.edge_count == 1

    def test_contains_and_iter(self):
        g = path_graph(3)
        assert 1 in g and 9 not in g
        assert set(iter(g)) == {0, 1, 2}
        assert len(g) == 3


class TestNeighborhoods:
    def test_successors_predecessors(self):
        g = CommGraph(edges=[(0, 1), (2, 1)])
        assert g.successors(0) == {1}
        assert g.predecessors(1) == {0, 2}
        assert g.neighbors(1) == {0, 2}

    def test_degree_is_undirected(self):
        g = CommGraph()
        g.add_bidirectional(0, 1)
        g.add_edge(2, 0)
        assert g.degree(0) == 2
        assert g.max_degree() == 2

    def test_neighbors_returns_copy(self):
        g = path_graph(3)
        g.neighbors(1).add(99)
        assert 99 not in g.neighbors(1)


class TestCommunicatingPairs:
    def test_bidirectional_counted_once(self):
        g = CommGraph()
        g.add_bidirectional(0, 1)
        assert g.communicating_pairs() == [(0, 1)]

    def test_pair_count_for_path(self):
        assert len(path_graph(10).communicating_pairs()) == 9

    def test_pairs_cover_all_edges(self):
        g = CommGraph(edges=[(0, 1), (2, 1), (2, 0)])
        covered = {frozenset(p) for p in g.communicating_pairs()}
        assert covered == {frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})}


class TestStructure:
    def test_connectivity(self):
        assert path_graph(5).is_connected()
        g = CommGraph(edges=[(0, 1)], nodes=[7])
        assert not g.is_connected()

    def test_empty_graph_is_connected(self):
        assert CommGraph().is_connected()

    def test_components(self):
        g = CommGraph(edges=[(0, 1), (2, 3)])
        comps = sorted(g.undirected_components(), key=len)
        assert {frozenset(c) for c in comps} == {frozenset({0, 1}), frozenset({2, 3})}

    def test_acyclicity(self):
        assert path_graph(4).is_acyclic()
        g = CommGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert not g.is_acyclic()

    def test_bidirectional_is_cyclic(self):
        g = CommGraph()
        g.add_bidirectional(0, 1)
        assert not g.is_acyclic()

    def test_undirected_distance(self):
        g = path_graph(6)
        assert g.undirected_distance(0, 5) == 5
        assert g.undirected_distance(2, 2) == 0

    def test_undirected_distance_disconnected(self):
        g = CommGraph(edges=[(0, 1)], nodes=["x"])
        assert g.undirected_distance(0, "x") == -1

    def test_distance_ignores_direction(self):
        g = CommGraph(edges=[(0, 1), (2, 1)])
        assert g.undirected_distance(0, 2) == 2


class TestCutsAndSubgraphs:
    def test_crossing_edges(self):
        g = path_graph(6)
        crossing = g.crossing_edges({0, 1, 2}, {3, 4, 5})
        assert [frozenset(e) for e in crossing] == [frozenset({2, 3})]

    def test_crossing_ignores_internal(self):
        g = path_graph(4)
        assert g.crossing_edges({0, 1, 2, 3}, set()) == []

    def test_subgraph(self):
        g = path_graph(5)
        sub = g.subgraph({1, 2, 3})
        assert sub.node_count == 3
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(0, 1)
