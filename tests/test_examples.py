"""Smoke tests: every example script runs to completion.

Examples contain their own assertions (clocked results equal lockstep,
certificates check, etc.), so running them is a meaningful integration
test, not just an import check.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart.py",
    "systolic_sorting_pipeline.py",
    "mesh_skew_explorer.py",
    "inverter_string_chip.py",
    "tree_machine_search.py",
    "fault_injection_and_recovery.py",
    "design_advisor_tour.py",
    "static_timing_gate.py",
]


def load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real walkthrough

def test_all_examples_listed():
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert present == set(EXAMPLES)
