"""Unit tests for the static flow analyzer (:mod:`repro.sta.flow`).

Covers the token-weighted graph build, the Karp/Howard MCM solvers, the
static deadlock detector, minimal buffer sizing, the steady-state
simulator and its closed-form transient extrapolation, the
``STAAnalyzer.flow`` memo, ``ECOSession.set_channel_capacity``
incremental reuse, the schema-validated flow report, and — the
handshake cross-check — the signal-level pipeline disciplines'
measured ``steady_cycle_time`` against their marked-graph MCM models.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.graphs.comm import CommGraph
from repro.obs.schema import validate_flow_report
from repro.sim.compiled import CompiledRecurrence
from repro.sim.dataflow import per_cell_service
from repro.sim.handshake import run_credit_pipeline, run_handshake_pipeline
from repro.sta.analyzer import STAAnalyzer
from repro.sta.design import design_for_workload
from repro.sta.eco import ECOSession
from repro.sta.flow import (
    FlowEdge,
    FlowGraph,
    analyze_flow,
    detect_deadlock,
    flow_graph,
    mcm_howard,
    mcm_karp,
    minimal_buffer_sizing,
    simulate_steady_state,
    simulate_steady_state_scalar,
)
from repro.sta.flowreport import build_flow_report, render_flow_report


def _pipeline(n):
    comm = CommGraph()
    for i in range(n):
        comm.add_node(i)
    for i in range(n - 1):
        comm.add_edge(i, i + 1)
    return comm


def _ring(n):
    comm = CommGraph()
    for i in range(n):
        comm.add_node(i)
    for i in range(n):
        comm.add_edge(i, (i + 1) % n)
    return comm


def _mesh(side):
    comm = CommGraph()
    for r in range(side):
        for c in range(side):
            comm.add_node((r, c))
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                comm.add_edge((r, c), (r, c + 1))
            if r + 1 < side:
                comm.add_edge((r, c), (r + 1, c))
    return comm


# ----------------------------------------------------------------------
# graph construction
# ----------------------------------------------------------------------
class TestFlowGraph:
    def test_unbounded_pipeline_has_self_and_forward_edges_only(self):
        comm = _pipeline(3)
        fg = flow_graph(comm, 1.5, 0.25)
        kinds = [e.kind for e in fg.edges]
        assert kinds.count("compute") == 3
        assert kinds.count("forward") == 2
        assert kinds.count("credit") == 0
        for e in fg.edges:
            if e.kind == "compute":
                assert e.src == e.dst and e.tokens == 1 and e.weight == 1.5
            else:
                assert e.tokens == 1 and e.weight == 0.25 + 1.5

    def test_finite_capacity_adds_credit_back_edges(self):
        comm = _pipeline(3)
        fg = flow_graph(comm, 1.0, 0.0, 3)
        credits = [e for e in fg.edges if e.kind == "credit"]
        assert len(credits) == 2
        for e in credits:
            assert e.tokens == 2  # depth - 1

    def test_per_edge_capacity_map(self):
        comm = _pipeline(3)
        cap = {(0, 1): 1, (1, 2): 4}
        fg = flow_graph(comm, 1.0, 0.0, cap)
        tokens = sorted(
            e.tokens for e in fg.edges if e.kind == "credit"
        )
        assert tokens == [0, 3]

    def test_unknown_edge_in_capacity_map_rejected(self):
        comm = _pipeline(2)
        with pytest.raises((KeyError, ValueError)):
            flow_graph(comm, 1.0, 0.0, {(7, 8): 2})


# ----------------------------------------------------------------------
# MCM solvers
# ----------------------------------------------------------------------
class TestMCM:
    def test_unbounded_mcm_is_max_service(self):
        comm = _pipeline(4)
        service = {0: 1.0, 1: 1.875, 2: 1.25, 3: 1.5}
        fg = flow_graph(comm, service, 0.5)
        cycle = mcm_howard(fg)
        assert cycle is not None
        assert cycle.cycle_time == 1.875
        assert mcm_karp(fg) == 1.875

    def test_karp_equals_howard_on_meshes_and_rings(self):
        for comm in (_mesh(3), _mesh(4), _ring(5)):
            cells = comm.nodes()
            service = {c: 1.0 + (i % 8) / 8 for i, c in enumerate(cells)}
            for cap in (None, 2, 4):
                fg = flow_graph(comm, service, 0.5, cap)
                howard = mcm_howard(fg)
                assert howard is not None
                assert howard.cycle_time == mcm_karp(fg)

    def test_cycle_weight_token_ratio_is_consistent(self):
        fg = flow_graph(_mesh(3), 1.25, 0.5, 2)
        cycle = mcm_howard(fg)
        assert cycle is not None
        assert cycle.tokens > 0
        assert cycle.cycle_time == cycle.weight / cycle.tokens

    def test_warm_start_reaches_same_answer(self):
        fg = flow_graph(_mesh(4), 1.375, 0.5, 2)
        cold = mcm_howard(fg)
        assert cold is not None
        warm = mcm_howard(fg, warm_start=cold.policy)
        assert warm is not None
        assert warm.cycle_time == cold.cycle_time


# ----------------------------------------------------------------------
# deadlock detection
# ----------------------------------------------------------------------
class TestDeadlock:
    def test_capacity_one_ring_deadlocks_with_witness(self):
        comm = _ring(4)
        cycle = detect_deadlock(comm, 1)
        assert cycle is not None
        assert len(cycle) == 4
        # The witness closes on itself.
        for (u, v), (nxt, _w) in zip(cycle, cycle[1:] + cycle[:1]):
            assert v == nxt

    def test_capacity_two_ring_is_live(self):
        assert detect_deadlock(_ring(4), 2) is None

    def test_acyclic_comm_never_deadlocks(self):
        assert detect_deadlock(_pipeline(5), 1) is None
        assert detect_deadlock(_mesh(3), 1) is None

    def test_unbounded_never_deadlocks(self):
        assert detect_deadlock(_ring(3), None) is None

    def test_mixed_map_deadlocks_only_when_a_unit_cycle_exists(self):
        comm = _ring(3)
        live = {(0, 1): 1, (1, 2): 1, (2, 0): 2}
        assert detect_deadlock(comm, live) is None
        dead = {(0, 1): 1, (1, 2): 1, (2, 0): 1}
        assert detect_deadlock(comm, dead) is not None

    def test_analyze_flow_surfaces_deadlock(self):
        analysis = analyze_flow(_ring(3), 1.0, 0.5, 1)
        assert analysis.dead
        assert analysis.cycle is None
        assert analysis.cycle_time is None
        assert analysis.throughput is None


# ----------------------------------------------------------------------
# static vs dynamic: bit-equality on dyadic designs
# ----------------------------------------------------------------------
class TestStaticVsDynamic:
    def test_mcm_equals_simulated_rate_bit_for_bit(self):
        for comm in (_mesh(3), _ring(4)):
            cells = comm.nodes()
            service = {c: 1.0 + (i * 3 % 8) / 8 for i, c in enumerate(cells)}
            for cap in (None, 2):
                cycle = mcm_howard(flow_graph(comm, service, 0.5, cap))
                steady = simulate_steady_state(comm, service, 0.5, cap)
                assert cycle is not None
                assert cycle.cycle_time == steady.cycle_time

    def test_scalar_steady_state_matches_stepper(self):
        comm = _mesh(3)
        service = {c: 1.0 + (i % 8) / 8 for i, c in enumerate(comm.nodes())}
        a = simulate_steady_state(comm, service, 0.5, 2)
        b = simulate_steady_state_scalar(comm, service, 0.5, 2)
        assert a.cycle_time == b.cycle_time
        assert a.period == b.period

    def test_makespan_extrapolation_matches_compiled_recurrence(self):
        comm = _mesh(3)
        service = {c: 1.0 + (i * 5 % 8) / 8 for i, c in enumerate(comm.nodes())}
        steady = simulate_steady_state(comm, service, 0.5, 2)
        svc = per_cell_service(service)
        compiled = CompiledRecurrence(comm)
        for horizon in (steady.waves_run + 3, 2 * steady.waves_run + 1):
            assert steady.makespan_at(horizon) == compiled.makespan(
                svc, 0.5, horizon, capacity=2
            )

    def test_transient_bounds_bracket_the_makespans(self):
        comm = _mesh(3)
        steady = simulate_steady_state(comm, 1.25, 0.5, None)
        lo, hi = steady.bounds()
        for waves in range(1, steady.waves_run + 1):
            m = steady.makespans[waves - 1]
            assert waves * steady.cycle_time + lo <= m + 1e-9
            assert m <= waves * steady.cycle_time + hi + 1e-9


# ----------------------------------------------------------------------
# buffer sizing
# ----------------------------------------------------------------------
class TestSizing:
    def test_sizing_meets_target_and_reanalysis_agrees(self):
        comm = _mesh(3)
        service = {c: 1.0 + (i % 8) / 8 for i, c in enumerate(comm.nodes())}
        base = mcm_howard(flow_graph(comm, service, 0.5, None))
        assert base is not None
        result = minimal_buffer_sizing(comm, service, 0.5, base.cycle_time)
        assert result.cycle_time <= base.cycle_time
        verdict = analyze_flow(comm, service, 0.5, result.capacities)
        assert not verdict.dead
        assert verdict.cycle_time == result.cycle_time
        assert set(result.capacities) == set(comm.edges())

    def test_slack_shrinks_required_depths(self):
        comm = _ring(5)
        base = mcm_howard(flow_graph(comm, 1.5, 0.5, None))
        assert base is not None
        tight = minimal_buffer_sizing(comm, 1.5, 0.5, base.cycle_time)
        loose = minimal_buffer_sizing(comm, 1.5, 0.5, base.cycle_time + 2.0)
        assert loose.total_capacity <= tight.total_capacity

    def test_unachievable_target_raises(self):
        comm = _mesh(3)
        base = mcm_howard(flow_graph(comm, 1.5, 0.5, None))
        assert base is not None
        with pytest.raises(ValueError):
            minimal_buffer_sizing(comm, 1.5, 0.5, base.cycle_time - 0.5)


# ----------------------------------------------------------------------
# handshake cross-check: signal-level disciplines vs their MCM models
# ----------------------------------------------------------------------
class TestHandshakeCrossCheck:
    """The three handshake flow-control laws are maximum cycle means of
    tiny marked graphs.  The simulator measures the law; the MCM solver
    derives it — they must agree on every (service, wire) point."""

    @staticmethod
    def _mcm(edges, services):
        fg = FlowGraph.from_edges(list(range(len(services))), edges,
                                  np.asarray(services, dtype=np.float64))
        cycle = mcm_howard(fg)
        assert cycle is not None
        return cycle.cycle_time

    def _model(self, s, w, discipline, credits=2):
        # One stage and its downstream neighbour: a forward request, the
        # returning ack/credit, and the stage's own compute recycle.
        if discipline == "unbuffered":
            # Token leaves after compute+wire; the ack (one more wire)
            # must return before the next token departs: s + 2w.
            edges = [
                FlowEdge(0, 1, s + w, 1, "forward", wire=w, service=s),
                FlowEdge(1, 0, w, 0, "credit", wire=w),
                FlowEdge(0, 0, s, 1, "compute", service=s),
            ]
        elif discipline == "buffered":
            # The skid owns the round trip; compute only waits for the
            # skid slot, not the far end: max(s, 2w).
            edges = [
                FlowEdge(0, 1, w, 1, "forward", wire=w),
                FlowEdge(1, 0, w, 0, "credit", wire=w),
                FlowEdge(0, 0, s, 1, "compute", service=s),
            ]
        else:  # credit
            # `credits` tokens pipeline the round-trip loop:
            # max(s, 2w / credits).
            edges = [
                FlowEdge(0, 1, w, 1, "forward", wire=w),
                FlowEdge(1, 0, w, credits - 1, "credit", wire=w),
                FlowEdge(0, 0, s, 1, "compute", service=s),
            ]
        return self._mcm(edges, [s, s])

    def test_unbuffered_law_matches_mcm(self):
        for s, w in ((1.25, 0.25), (0.5, 0.5), (2.0, 0.125)):
            assert self._model(s, w, "unbuffered") == s + 2 * w
            run = run_handshake_pipeline(
                5, 120, lambda rng: s, wire_delay=w, seed=3
            )
            assert run.steady_cycle_time == pytest.approx(
                self._model(s, w, "unbuffered")
            )

    def test_buffered_law_matches_mcm(self):
        for s, w in ((1.25, 0.25), (0.25, 1.0), (1.0, 0.5)):
            assert self._model(s, w, "buffered") == max(s, 2 * w)
            run = run_handshake_pipeline(
                5, 120, lambda rng: s, wire_delay=w, seed=3, buffered=True
            )
            assert run.steady_cycle_time == pytest.approx(
                self._model(s, w, "buffered")
            )

    def test_credit_law_matches_mcm(self):
        for s, w, credits in ((0.125, 0.5, 2), (0.125, 0.5, 4),
                              (1.5, 0.25, 2), (0.25, 1.0, 8)):
            assert self._model(s, w, "credit", credits) == max(
                s, 2 * w / credits
            )
            run = run_credit_pipeline(
                5, 160, lambda rng: s, wire_delay=w, credits=credits, seed=3
            )
            # The finite run's tail drains without backpressure, so the
            # measured rate sits a hair under the law (same tolerance as
            # the handshake law tests).
            assert run.steady_cycle_time == pytest.approx(
                self._model(s, w, "credit", credits), rel=0.02
            )


# ----------------------------------------------------------------------
# analyzer memo
# ----------------------------------------------------------------------
class TestAnalyzerFlow:
    def test_flow_memo_hits_on_identical_spec(self):
        sta = STAAnalyzer(design_for_workload("fir", size=4))
        a = sta.flow(service=1.25, wire_delay=0.5, capacity=2)
        b = sta.flow(service=1.25, wire_delay=0.5, capacity=2)
        assert a is b

    def test_flow_memo_misses_on_different_spec(self):
        sta = STAAnalyzer(design_for_workload("fir", size=4))
        a = sta.flow(service=1.25, wire_delay=0.5)
        b = sta.flow(service=1.5, wire_delay=0.5)
        assert a is not b

    def test_flow_matches_cold_analyze(self):
        design = design_for_workload("fir", size=4)
        sta = STAAnalyzer(design)
        memoed = sta.flow(service=1.25, wire_delay=0.5, capacity=2)
        cold = analyze_flow(design.array.comm, 1.25, 0.5, 2)
        assert memoed.dead == cold.dead
        assert memoed.cycle_time == cold.cycle_time


# ----------------------------------------------------------------------
# ECO incremental capacity edits
# ----------------------------------------------------------------------
class TestEcoFlow:
    def test_widening_off_critical_edge_reuses_cached_cycle(self):
        session = ECOSession(design_for_workload("fir", size=5))
        comm = session.design.array.comm
        for edge in comm.edges():
            session.set_channel_capacity(edge, 2)
        before = session.flow(service=1.25, wire_delay=0.5)
        assert not before.dead and before.cycle is not None
        spare = next(e for e in comm.edges()
                     if e not in before.critical_comm_edges())
        edit = session.set_channel_capacity(spare, 3)
        assert edit.op == "set_channel_capacity"
        after = session.flow(service=1.25, wire_delay=0.5)
        assert after.cycle is before.cycle  # identity: no re-solve

    def test_narrowing_recomputes_and_matches_cold_solve(self):
        session = ECOSession(design_for_workload("fir", size=5))
        comm = session.design.array.comm
        for edge in comm.edges():
            session.set_channel_capacity(edge, 4)
        session.flow(service=1.25, wire_delay=0.5)
        edge = comm.edges()[0]
        session.set_channel_capacity(edge, 2)
        warm = session.flow(service=1.25, wire_delay=0.5)
        cold = analyze_flow(comm, 1.25, 0.5, session.channel_capacities)
        assert warm.dead == cold.dead
        assert warm.cycle_time == cold.cycle_time

    def test_capacity_edit_validation(self):
        session = ECOSession(design_for_workload("fir", size=4))
        edge = session.design.array.comm.edges()[0]
        with pytest.raises(ValueError):
            session.set_channel_capacity(edge, 0)
        with pytest.raises(KeyError):
            session.set_channel_capacity(("no", "such"), 2)

    def test_apply_dispatches_capacity_edits(self):
        session = ECOSession(design_for_workload("fir", size=4))
        edge = session.design.array.comm.edges()[0]
        edit = session.apply("set_channel_capacity", edge=edge, depth=3)
        assert edit.op == "set_channel_capacity"
        assert session.channel_capacities[edge] == 3


# ----------------------------------------------------------------------
# flow report + CLI
# ----------------------------------------------------------------------
class TestFlowReport:
    def test_live_report_validates_and_is_exact(self):
        comm = _mesh(3)
        service = {c: 1.0 + (i % 8) / 8 for i, c in enumerate(comm.nodes())}
        report = build_flow_report(comm, service, 0.5, 2,
                                   design_name="mesh3",
                                   sizing_target=None)
        assert validate_flow_report(report) == []
        assert not report["deadlock"]["dead"]
        assert report["agreement"]["exact"]
        assert report["agreement"]["max_abs_diff"] == 0.0
        text = render_flow_report(report)
        assert "mesh3" in text and "cycle time" in text

    def test_dead_report_carries_witness(self):
        report = build_flow_report(_ring(3), 1.0, 0.5, 1,
                                   design_name="ring3")
        assert validate_flow_report(report) == []
        assert report["deadlock"]["dead"]
        assert len(report["deadlock"]["cycle"]) == 3
        assert "DEADLOCK" in render_flow_report(report).upper()

    def test_cli_flow_verb_writes_valid_artifact(self, tmp_path):
        out = tmp_path / "flow.json"
        code = cli_main(["flow", "--workload", "fir", "--size", "4",
                         "--json", str(out)])
        assert code == 0
        reports = json.loads(out.read_text())
        assert len(reports) == 1
        assert validate_flow_report(reports[0]) == []
        assert reports[0]["agreement"]["exact"]

    def test_cli_sta_flow_flag_writes_valid_artifact(self, tmp_path):
        out = tmp_path / "sta_flow.json"
        code = cli_main(["sta", "--workload", "fir", "--size", "4",
                         "--flow", str(out)])
        assert code == 0
        reports = json.loads(out.read_text())
        assert all(validate_flow_report(r) == [] for r in reports)
