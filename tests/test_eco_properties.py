"""Property tests (hypothesis): ECO incremental == full, always.

Random edit scripts (up to 50 edits) over :func:`random_design`, with the
oracle comparison of :mod:`repro.check.eco` run after EVERY edit: each
slack array byte-for-byte, the running extrema, and the warm-started
minimum feasible period in both modes.  The edit generator deliberately
revisits the current worst setup edge and relaxes it, so the lazy
extremum trackers' un-dirty-the-champion path is exercised, not just the
monotone-worsening one.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.eco import assert_session_matches_oracle, random_edit
from repro.sta.design import random_design
from repro.sta.eco import ECOSession

seeds = st.integers(min_value=0, max_value=10_000)


@given(seed=seeds, n_edits=st.integers(min_value=1, max_value=50))
@settings(max_examples=20, deadline=None)
def test_random_edit_scripts_stay_bit_identical(seed, n_edits):
    rng = random.Random(f"eco-props|{seed}")
    session = ECOSession(random_design(seed))
    graft_serial = [0]
    for step in range(n_edits):
        descriptor = random_edit(rng, session, graft_serial)
        assert_session_matches_oracle(
            session, {"seed": seed, "step": step, "edit": repr(descriptor)}
        )
    assert len(session.edits) == n_edits


@given(seed=seeds)
@settings(max_examples=15, deadline=None)
def test_undirtying_the_worst_edge_keeps_extrema_exact(seed):
    """A script that explicitly worsens, then relaxes, the worst setup
    edge — the sequence that would expose a stale cached argmin."""
    from repro.sta.slack import analyze_slack

    session = ECOSession(random_design(seed, clean=True))
    analysis = analyze_slack(session.design)
    worst = analysis.edges[int(analysis.setup_exact.argmin())]
    session.retarget_wire(worst, 100.0)  # the champion, by a margin
    assert_session_matches_oracle(session, {"seed": seed, "step": "worsen"})
    session.retarget_wire(worst, 0.0)  # un-dirty it: champion must fall
    assert_session_matches_oracle(session, {"seed": seed, "step": "relax"})
    session.repad_edge(worst, 3.0)  # and the hold-side champion
    assert_session_matches_oracle(session, {"seed": seed, "step": "pad"})
    session.repad_edge(worst, 0.0)
    assert_session_matches_oracle(session, {"seed": seed, "step": "unpad"})
