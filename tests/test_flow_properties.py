"""Property tests (hypothesis): the static flow analysis vs the machine.

Three contracts over randomized designs and capacity assignments:

* the maximum cycle mean equals the simulator's measured long-run cycle
  time *bit-for-bit* — dyadic-rational services make every path sum an
  exact float, so static and dynamic land on the same number;
* ``minimal_buffer_sizing`` is irreducible: decrementing any returned
  depth deadlocks the array or pushes the cycle time above the target;
* ``detect_deadlock`` agrees with the simulator's eager
  :class:`ChannelDeadlockError` on every sampled capacity map.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dataflow import (
    ChannelDeadlockError,
    SelfTimedProgramSimulator,
    per_cell_service,
)
from repro.sta.design import random_design
from repro.sta.flow import (
    detect_deadlock,
    flow_graph,
    mcm_howard,
    mcm_karp,
    minimal_buffer_sizing,
    simulate_steady_state,
)

seeds = st.integers(min_value=0, max_value=10_000)


def _dyadic_services(comm, seed):
    """Per-cell services on the 1/64 grid in [1, 2): exact dyadics."""
    rng = random.Random(f"flow-prop|{seed}")
    return {c: 1.0 + rng.randrange(64) / 64 for c in comm.nodes()}


@given(seed=seeds, cap=st.sampled_from([None, 2, 3]))
@settings(max_examples=25, deadline=None)
def test_mcm_equals_simulated_rate_bit_for_bit(seed, cap):
    design = random_design(seed)
    comm = design.array.comm
    service = _dyadic_services(comm, seed)
    fg = flow_graph(comm, service, 0.5, cap)
    cycle = mcm_howard(fg)
    assert cycle is not None
    assert cycle.cycle_time == mcm_karp(fg)
    steady = simulate_steady_state(comm, service, 0.5, cap)
    assert cycle.cycle_time == steady.cycle_time


@given(seed=seeds, slack_eighths=st.integers(min_value=0, max_value=4))
@settings(max_examples=15, deadline=None)
def test_sizing_is_minimal(seed, slack_eighths):
    design = random_design(seed)
    comm = design.array.comm
    service = _dyadic_services(comm, seed)
    base = mcm_howard(flow_graph(comm, service, 0.5, None))
    assert base is not None
    target = base.cycle_time + slack_eighths / 8
    result = minimal_buffer_sizing(comm, service, 0.5, target)
    assert result.cycle_time <= target
    for edge, depth in result.capacities.items():
        if depth <= 1:
            continue
        trial = dict(result.capacities)
        trial[edge] = depth - 1
        if detect_deadlock(comm, trial) is not None:
            continue  # the decrement deadlocks: reduction blocked
        shrunk = mcm_howard(flow_graph(comm, service, 0.5, trial))
        assert shrunk is not None
        assert shrunk.cycle_time > target, (
            f"capacity on {edge!r} reducible at target {target}"
        )


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_deadlock_detector_matches_simulator(seed):
    design = random_design(seed)
    program = design.program
    comm = program.array.comm
    rng = random.Random(f"flow-deadlock-prop|{seed}")
    cap = {e: rng.randint(1, 3) for e in comm.edges()}
    service = _dyadic_services(comm, seed)
    cycle = detect_deadlock(comm, cap)
    raised = False
    try:
        SelfTimedProgramSimulator(
            program, service=per_cell_service(service), wire_delay=0.5,
            channel_capacity=cap,
        ).run()
    except ChannelDeadlockError:
        raised = True
    assert raised == (cycle is not None)
    if cycle is not None:
        assert all(cap[(u, v)] == 1 for u, v in cycle)
