"""Tests for the hybrid synchronization network simulation (Fig. 8)."""

import pytest

from repro.arrays.topologies import mesh
from repro.core.hybrid import build_hybrid
from repro.core.parameters import equipotential_tau
from repro.clocktree.builders import serpentine_clock
from repro.sim.hybrid_sim import simulate_hybrid


class TestHybridSimulation:
    def test_cycle_time_constant_in_array_size(self):
        cycles = []
        for n in (8, 16, 32):
            scheme = build_hybrid(mesh(n, n), element_size=4.0)
            result = simulate_hybrid(scheme, steps=30, delta=1.0)
            cycles.append(result.cycle_time)
        assert max(cycles) - min(cycles) <= 1e-9

    def test_within_analytic_bound(self):
        scheme = build_hybrid(mesh(12, 12), element_size=4.0)
        result = simulate_hybrid(scheme, steps=30, delta=1.0)
        assert result.within_analytic_bound

    def test_jitter_absorbed_without_divergence(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        result = simulate_hybrid(scheme, steps=60, delta=1.0, jitter=0.5, seed=2)
        assert result.cycle_time <= result.analytic_cycle_time + 1e-9

    def test_jitter_reproducible(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        a = simulate_hybrid(scheme, steps=40, delta=1.0, jitter=0.3, seed=5)
        b = simulate_hybrid(scheme, steps=40, delta=1.0, jitter=0.3, seed=5)
        assert a.completion_time == b.completion_time

    def test_beats_global_equipotential_clock_at_scale(self):
        """The Section VI payoff: hybrid cycle time stays flat while the
        equipotential global clock's period grows with the array diameter."""
        n = 32
        array = mesh(n, n)
        hybrid_cycle = simulate_hybrid(
            build_hybrid(array, element_size=4.0), steps=30, delta=1.0
        ).cycle_time
        global_tau = equipotential_tau(serpentine_clock(array))
        assert global_tau > 5 * hybrid_cycle

    def test_single_element_degenerates_to_local_clock(self):
        scheme = build_hybrid(mesh(4, 4), element_size=8.0)
        result = simulate_hybrid(scheme, steps=20, delta=1.0)
        assert result.elements == 1
        assert result.cycle_time == pytest.approx(
            2.0 * scheme.max_local_distribution() + 1.0
        )

    def test_completion_time_scales_with_steps(self):
        scheme = build_hybrid(mesh(8, 8), element_size=4.0)
        short = simulate_hybrid(scheme, steps=10, delta=1.0)
        long = simulate_hybrid(scheme, steps=40, delta=1.0)
        assert long.completion_time > 3 * short.completion_time

    def test_rejects_bad_args(self):
        scheme = build_hybrid(mesh(4, 4), element_size=2.0)
        with pytest.raises(ValueError):
            simulate_hybrid(scheme, steps=1, delta=1.0)
        with pytest.raises(ValueError):
            simulate_hybrid(scheme, steps=10, delta=-1.0)
        with pytest.raises(ValueError):
            simulate_hybrid(scheme, steps=10, delta=1.0, m=0)
