"""Critical-path forensics: the reconstructed dependency chain must end
exactly (bit for bit) at the makespan the simulators report, on every
engine, and the per-step arithmetic must account for the whole path."""

import pytest

from repro.obs.critpath import (
    clocked_critical_path,
    critical_path_from_trace,
    selftimed_critical_path,
)
from repro.obs.trace import RecordingTracer
from repro.sim.dataflow import SelfTimedProgramSimulator, hashed_service
from repro.sta.design import random_design

SEEDS = [0, 1, 2, 5]


def _chain_is_contiguous(cp):
    for prev, step in zip(cp.steps, cp.steps[1:]):
        assert step.t_start == prev.t_end, (prev, step)


class TestClockedCriticalPath:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_and_compiled_makespans(self, seed):
        design = random_design(seed)
        sim = design.simulator()
        scalar = sim.run_scalar()
        compiled = sim.compiled().run()
        cp = sim.critical_path()
        assert cp.engine == "clocked"
        assert cp.makespan == scalar.makespan  # bitwise
        assert cp.makespan == compiled.makespan

    def test_chain_is_contiguous_and_starts_at_zero(self):
        design = random_design(3)
        cp = design.simulator().critical_path()
        assert cp.steps[0].t_start == 0.0
        assert cp.steps[-1].t_end == cp.makespan
        _chain_is_contiguous(cp)

    def test_blame_shares_sum_to_one(self):
        cp = random_design(4).simulator().critical_path()
        rows = cp.blame()
        assert rows
        assert sum(share for _, _, _, share in rows) == pytest.approx(1.0)
        seconds = [s for _, _, s, _ in rows]
        assert seconds == sorted(seconds, reverse=True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reported_makespan_marks_exact(self, seed):
        design = random_design(seed)
        sim = design.simulator()
        run = sim.run()
        cp = clocked_critical_path(
            sim._schedule, sim._comm.nodes(), run.ticks, reported=run.makespan
        )
        assert cp.exact


class TestSelfTimedCriticalPath:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_recurrence_makespans(self, seed):
        design = random_design(seed)
        service = hashed_service(1.0, 3.0, 0.3, seed)
        sim = SelfTimedProgramSimulator(
            design.program, service=service, wire_delay=0.25
        )
        cp = sim.critical_path()
        assert cp.engine == "selftimed"
        assert cp.makespan == sim.recurrence_makespan_scalar()  # bitwise
        assert cp.makespan == sim.recurrence_makespan()
        assert cp.exact

    def test_chain_alternates_compute_and_wire(self):
        design = random_design(1)
        sim = SelfTimedProgramSimulator(
            design.program, service=hashed_service(1.0, 3.0, 0.3, 1),
            wire_delay=0.25,
        )
        cp = sim.critical_path()
        _chain_is_contiguous(cp)
        assert cp.steps[-1].kind == "compute"
        assert all(step.kind in ("compute", "wire") for step in cp.steps)


class TestCriticalPathFromTrace:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_clocked_trace_reproduces_makespan(self, seed):
        design = random_design(seed)
        tracer = RecordingTracer()
        run = design.simulator(tracer=tracer).run()
        cp = critical_path_from_trace(tracer.events)
        assert cp.engine == "clocked"
        assert cp.makespan == run.makespan  # bitwise
        assert cp.exact

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dataflow_trace_reproduces_makespan(self, seed):
        design = random_design(seed)
        tracer = RecordingTracer()
        sim = SelfTimedProgramSimulator(
            design.program,
            service=hashed_service(1.0, 3.0, 0.3, seed),
            wire_delay=0.25,
            tracer=tracer,
        )
        run = sim.run()
        cp = critical_path_from_trace(tracer.events)
        assert cp.engine == "selftimed"
        assert cp.makespan == run.makespan  # bitwise
        assert cp.exact
        # Every step must be a real interval ending at the makespan.
        assert cp.steps[-1].t_end == run.makespan
        _chain_is_contiguous(cp)

    def test_dataflow_blame_names_cells(self):
        design = random_design(2)
        tracer = RecordingTracer()
        sim = SelfTimedProgramSimulator(
            design.program,
            service=hashed_service(1.0, 3.0, 0.3, 2),
            wire_delay=0.25,
            tracer=tracer,
        )
        sim.run()
        cp = critical_path_from_trace(tracer.events)
        rows = cp.blame()
        assert rows
        assert sum(share for _, _, _, share in rows) == pytest.approx(1.0)

    def test_non_causal_trace_raises(self):
        tracer = RecordingTracer()
        tracer.event(0.0, "hybrid", "step", element=0)
        with pytest.raises(ValueError):
            critical_path_from_trace(tracer.events)

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            critical_path_from_trace([])
