"""Tests for the Section VII inverter-string experiment."""

import math

import pytest

from repro.analysis.montecarlo import run_trials
from repro.delay.buffer import InverterPairModel
from repro.sim.inverter import (
    PAPER_EQUIPOTENTIAL_CYCLE,
    PAPER_PIPELINED_CYCLE,
    PAPER_SPEEDUP,
    PAPER_STRING_LENGTH,
    InverterString,
    fixed_yield_cycle_time,
    paper_calibrated_model,
    _normal_quantile,
)


class TestPaperCalibration:
    def test_equipotential_cycle_matches_paper(self):
        chip = InverterString(PAPER_STRING_LENGTH, paper_calibrated_model(seed=0))
        assert chip.equipotential_cycle() == pytest.approx(
            PAPER_EQUIPOTENTIAL_CYCLE, rel=0.02
        )

    def test_pipelined_cycle_matches_paper(self):
        chip = InverterString(PAPER_STRING_LENGTH, paper_calibrated_model(seed=0))
        assert chip.pipelined_cycle() == pytest.approx(PAPER_PIPELINED_CYCLE, rel=0.05)

    def test_speedup_68x(self):
        chip = InverterString(PAPER_STRING_LENGTH, paper_calibrated_model(seed=0))
        assert chip.result().speedup == pytest.approx(PAPER_SPEEDUP, rel=0.05)

    def test_five_chips_same_speedup(self):
        """The paper observed the same 68x on five separate chips — design
        bias dominates random noise."""
        speedups = [
            InverterString(PAPER_STRING_LENGTH, paper_calibrated_model(seed)).result().speedup
            for seed in range(5)
        ]
        assert max(speedups) - min(speedups) < 1.0
        assert all(abs(s - PAPER_SPEEDUP) < 2.0 for s in speedups)

    def test_speedup_scale_invariant_with_bias(self):
        """'a similar inverter string of any length could be clocked 68
        times faster' — constant-bias discrepancy scales like total delay."""
        speedups = []
        for n in (1024, 4096, 16384):
            chip = InverterString(n, paper_calibrated_model(seed=1))
            speedups.append(chip.result().speedup)
        assert max(speedups) / min(speedups) < 1.1


class TestMechanics:
    def test_equipotential_is_rise_plus_fall(self):
        chip = InverterString(4, InverterPairModel(nominal=2.0))
        assert chip.equipotential_cycle() == pytest.approx(16.0)

    def test_prefix_discrepancy_with_constant_bias(self):
        chip = InverterString(10, InverterPairModel(nominal=1.0, bias=0.1))
        assert chip.max_prefix_discrepancy() == pytest.approx(1.0)

    def test_pipelined_cycle_formula(self):
        chip = InverterString(10, InverterPairModel(nominal=1.0, bias=0.1))
        expected = 2.0 * (chip.max_stage_delay() + 1.0)
        assert chip.pipelined_cycle() == pytest.approx(expected)

    def test_no_bias_no_noise_pipelined_is_per_stage(self):
        chip = InverterString(100, InverterPairModel(nominal=1.0))
        assert chip.pipelined_cycle() == pytest.approx(2.0)

    def test_edges_arrive_in_order_at_pipelined_period(self):
        chip = InverterString(64, InverterPairModel(nominal=1.0, bias=0.05, seed=2))
        period = chip.pipelined_cycle()
        launches = [i * period / 2 for i in range(10)]
        arrivals = chip.propagate_edges(launches)
        assert arrivals == sorted(arrivals)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g > 0 for g in gaps)

    def test_edges_collide_below_pipelined_period(self):
        chip = InverterString(200, InverterPairModel(nominal=1.0, bias=0.05, seed=2))
        tight = chip.max_prefix_discrepancy() * 0.5
        launches = [0.0, tight]
        arrivals = chip.propagate_edges(launches)
        assert arrivals[1] <= arrivals[0]  # the pulse has collapsed

    def test_rejects_empty_string(self):
        with pytest.raises(ValueError):
            InverterString(0, InverterPairModel())


class TestSqrtScaling:
    def test_fixed_yield_cycle_grows_as_sqrt_n(self):
        variance = 1e-4
        t = {n: fixed_yield_cycle_time(n, variance, stage_delay=0.0) for n in (100, 400, 1600)}
        assert t[400] / t[100] == pytest.approx(2.0, rel=0.01)
        assert t[1600] / t[400] == pytest.approx(2.0, rel=0.01)

    def test_higher_yield_needs_longer_cycle(self):
        a = fixed_yield_cycle_time(1000, 1e-4, 1.0, yield_fraction=0.5)
        b = fixed_yield_cycle_time(1000, 1e-4, 1.0, yield_fraction=0.99)
        assert b > a

    def test_monte_carlo_endpoint_yield_matches_analytic(self):
        """The paper's analysis is about the endpoint discrepancy sum
        (~ N(0, n*V)): chips with |sum| under the z-quantile budget should
        appear with the yield fraction's frequency."""
        import math

        n, variance, y = 256, 1e-4, 0.9
        budget = _normal_quantile(0.5 + y / 2.0) * math.sqrt(n * variance)

        def trial(seed):
            chip = InverterString(n, InverterPairModel(nominal=1.0, variance=variance, seed=seed))
            return 1.0 if chip.total_discrepancy() <= budget else 0.0

        summary = run_trials(trial, n_trials=300, base_seed=0)
        assert summary.mean == pytest.approx(y, abs=0.06)

    def test_monte_carlo_prefix_yield_bounded_by_reflection(self):
        """The worst *prefix* of the walk exceeds the endpoint, so the
        realized yield at the endpoint budget drops — but never below the
        reflection-principle floor ``2y - 1``."""
        n, variance, y = 256, 1e-4, 0.9
        budget = fixed_yield_cycle_time(n, variance, stage_delay=1.0, yield_fraction=y)

        def trial(seed):
            chip = InverterString(n, InverterPairModel(nominal=1.0, variance=variance, seed=seed))
            return 1.0 if chip.pipelined_cycle() <= budget else 0.0

        summary = run_trials(trial, n_trials=200, base_seed=0)
        assert 2 * y - 1 - 0.05 <= summary.mean <= y + 0.05

    def test_zero_variance_reduces_to_stage_delay(self):
        assert fixed_yield_cycle_time(100, 0.0, 2.0) == pytest.approx(4.0)

    def test_normal_quantile_sanity(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _normal_quantile(0.975) == pytest.approx(1.96, abs=0.01)
        assert _normal_quantile(0.025) == pytest.approx(-1.96, abs=0.01)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fixed_yield_cycle_time(0, 1e-4, 1.0)
        with pytest.raises(ValueError):
            fixed_yield_cycle_time(10, -1, 1.0)
        with pytest.raises(ValueError):
            fixed_yield_cycle_time(10, 1e-4, 1.0, yield_fraction=1.5)
