"""End-to-end tests for the check suite: the registered oracles, the
self-timed dataflow simulator they lean on, and the CLI face."""

import json

import pytest

from repro.arrays.systolic import (
    build_fir_array,
    build_matvec_array,
    build_odd_even_sorter,
)
from repro.check import REGISTRY, default_registry, run_suite
from repro.check.registry import CheckContext
from repro.cli import main
from repro.obs.schema import validate_check_report
from repro.sim.dataflow import (
    SelfTimedProgramSimulator,
    constant_service,
    hashed_service,
)

EXPECTED_CHECKS = {
    "skew-bracket",
    "a5-period",
    "theorem-scaling",
    "tuning-monotonicity",
    "lower-bound-consistency",
    "differential-functional",
    "differential-timing",
    "differential-violations",
    "metamorphic-rescale",
    "metamorphic-jitter-seed",
    "metamorphic-relabel",
}


class TestDefaultRegistry:
    def test_all_oracles_registered(self):
        registry = default_registry()
        names = {c.name for c in registry.checks()}
        assert EXPECTED_CHECKS <= names

    def test_every_kind_represented(self):
        registry = default_registry()
        kinds = {c.kind for c in registry.checks("quick")}
        assert kinds == {"invariant", "differential", "metamorphic"}

    def test_quick_suite_passes_on_seed_workloads(self):
        results, report = run_suite(suite="quick", seed=0)
        failures = [(r.name, r.error) for r in results if not r.passed]
        assert failures == []
        assert report["passed"] is True
        assert validate_check_report(report) == []

    def test_quick_suite_passes_under_other_seeds(self):
        for seed in (1, 17):
            results, _ = run_suite(suite="quick", seed=seed)
            failures = [(r.name, r.error) for r in results if not r.passed]
            assert failures == [], f"seed {seed}: {failures}"

    def test_individual_oracles_runnable_directly(self):
        registry = default_registry()
        ctx = CheckContext(seed=0, suite="quick")
        details = registry.get("tuning-monotonicity").func(ctx)
        assert details["added_wire"] >= 0.0
        assert details["sigma_diff"][1] == pytest.approx(0.0, abs=1e-9)


class TestDataflowSimulator:
    """The self-timed executor the differential checks run workloads on."""

    def _programs(self):
        return [
            build_fir_array([0.5, -1.0, 2.0], [1.0, 2.0, 3.0, 4.0]),
            build_matvec_array([[1.0, 2.0], [3.0, 4.0]], [5.0, -1.0]),
            build_odd_even_sorter([4.0, 1.0, 3.0, 2.0]),
        ]

    def test_matches_lockstep_with_constant_service(self):
        for program in self._programs():
            reference = program.run_lockstep()
            run = SelfTimedProgramSimulator(program).run()
            assert run.result == reference

    def test_matches_lockstep_with_irregular_service(self):
        for program in self._programs():
            reference = program.run_lockstep()
            sim = SelfTimedProgramSimulator(
                program,
                service=hashed_service(1.0, 5.0, 0.3, seed=3),
                wire_delay=0.75,
            )
            assert sim.run().result == reference

    def test_engine_makespan_equals_recurrence(self):
        for program in self._programs():
            sim = SelfTimedProgramSimulator(
                program,
                service=hashed_service(1.0, 4.0, 0.25, seed=9),
                wire_delay=0.5,
            )
            assert sim.run().makespan == pytest.approx(
                sim.recurrence_makespan(), abs=1e-9
            )

    def test_constant_service_line_throughput(self):
        # With unit service and zero wire delay every wave takes exactly one
        # time unit: makespan == waves.
        program = build_odd_even_sorter([3.0, 1.0, 2.0])
        run = SelfTimedProgramSimulator(
            program, service=constant_service(1.0)
        ).run()
        assert run.makespan == pytest.approx(float(program.cycles))
        assert run.mean_cycle_time == pytest.approx(1.0)

    def test_rejects_bad_parameters(self):
        program = build_odd_even_sorter([1.0, 2.0])
        with pytest.raises(ValueError):
            SelfTimedProgramSimulator(program, wire_delay=-1.0)
        with pytest.raises(ValueError):
            constant_service(-0.5)
        with pytest.raises(ValueError):
            hashed_service(1.0, 0.5, 0.1)  # worst < normal
        with pytest.raises(ValueError):
            hashed_service(1.0, 2.0, 1.5)  # not a probability
        with pytest.raises(ValueError):
            SelfTimedProgramSimulator(program).run(waves=0)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCheckCommand:
    def test_quick_suite_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "check", "--suite", "quick")
        assert code == 0
        assert "11/11 checks passed" in out or "checks passed" in out
        assert "FAIL" not in out

    def test_json_report_written_and_valid(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code, out, _ = run_cli(
            capsys, "check", "--suite", "quick", "--seed", "3",
            "--json", str(out_file),
        )
        assert code == 0
        assert f"wrote {out_file}" in out
        report = json.loads(out_file.read_text())
        assert validate_check_report(report) == []
        assert report["suite"] == "quick"
        assert report["seed"] == 3
        assert report["passed"] is True

    def test_failing_check_exits_one(self, capsys, monkeypatch):
        import repro.check as check_pkg
        from repro.check.registry import CheckRegistry, require

        broken = CheckRegistry()
        broken.register("always-fails", "invariant", "forced failure")(
            lambda ctx: require(False, "forced failure", probe=1)
        )
        monkeypatch.setattr(check_pkg, "default_registry", lambda: broken)
        code, out, _ = run_cli(capsys, "check", "--suite", "quick")
        assert code == 1
        assert "FAIL" in out
        assert "forced failure" in out

    def test_check_with_trace_and_metrics(self, capsys, tmp_path):
        trace_file = tmp_path / "check.jsonl"
        code, out, _ = run_cli(
            capsys, "check", "--suite", "quick",
            "--trace", str(trace_file), "--metrics",
        )
        assert code == 0
        assert trace_file.exists()
        lines = [json.loads(l) for l in trace_file.read_text().splitlines()]
        assert any(e["cat"] == "check" and e["kind"] == "pass" for e in lines)
        assert "check.runs" in out  # metrics table printed

    def test_registry_not_double_registered_on_repeat_runs(self, capsys):
        # default_registry() imports oracle modules; a second call must not
        # re-register (module import is cached) or the CLI would crash.
        assert len(default_registry()) == len(default_registry())
        code, _, _ = run_cli(capsys, "check", "--suite", "quick")
        assert code == 0
        assert len(REGISTRY) == len(default_registry())
