"""Regression tests: BufferedClockTree.resample invalidates derived caches.

The failure mode being pinned down: a consumer memoizes quantities derived
from the sampled delays (batched arrival vectors, empirical skews, an STA
report) and keeps serving them after ``resample()`` redrew every delay.
The ``version`` counter is the invalidation contract.
"""

from repro.arrays.systolic import build_fir_array
from repro.clocktree.buffered import BufferedClockTree
from repro.core.schemes import build_scheme
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation
from repro.sta.analyzer import STAAnalyzer
from repro.sta.design import design_for_workload


def make_buffered(seed=0):
    program = build_fir_array([0.5, 0.25], [1.0, 2.0, 3.0, 4.0, 5.0])
    tree = build_scheme("serpentine", program.array)
    return program, BufferedClockTree(
        tree,
        buffer_spacing=1.0,
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.4, seed=seed),
        buffer_model=InverterPairModel(nominal=1.0, variance=0.05, seed=seed),
    )


def comm_edges(program):
    return program.array.comm.edges()


def test_version_bumps_on_resample():
    _, buffered = make_buffered()
    v0 = buffered.version
    buffered.resample(1)
    assert buffered.version == v0 + 1
    buffered.resample(2)
    assert buffered.version == v0 + 2


def test_resample_observed_through_batched_path():
    program, buffered = make_buffered()
    edges = comm_edges(program)
    before = buffered.max_skew(edges)  # populates the cached arrival vectors
    buffered.resample(99)
    after = buffered.max_skew(edges)
    assert after != before, "batched path served stale pre-resample skews"
    # and the batched path still agrees with the scalar oracle
    assert after == buffered.max_skew_scalar(edges)


def test_resample_with_same_seed_is_deterministic():
    program, buffered = make_buffered(seed=3)
    edges = comm_edges(program)
    buffered.resample(7)
    first = buffered.skew_batch(edges).copy()
    buffered.resample(8)
    buffered.resample(7)
    assert (buffered.skew_batch(edges) == first).all()


def test_memoizing_analyzer_observes_resample():
    design = design_for_workload("fir", size=5, seed=4)
    analyzer = STAAnalyzer(design)
    before = analyzer.empirical()
    assert before is not None
    # Warm every memo, then redraw the physical delays underneath.
    analyzer.report()
    design.buffered.resample(12345)
    after = analyzer.empirical()
    assert after["tree_version"] == design.buffered.version
    assert after["tree_version"] != before["tree_version"]
    assert after["max_skew"] != before["max_skew"], (
        "analyzer served a pre-resample empirical skew from its cache"
    )


def test_vectors_follow_tree_growth():
    program, buffered = make_buffered()
    edges = comm_edges(program)
    before = buffered.skew_batch(edges).copy()
    # Grow the geometric tree after the arrival vectors were built.
    tree = buffered.tree
    leaf = tree.nodes()[-1]
    from repro.geometry.point import Point

    pos = tree.position(leaf)
    tree.add_child(leaf, "grown-node", Point(pos.x + 1.0, pos.y))
    v0 = buffered.version
    # The batched path must include the new node without stale arrays...
    grown = buffered.skew_batch(edges + [(leaf, "grown-node")])
    assert buffered.version == v0 + 1  # a rebuild happened
    assert len(grown) == len(edges) + 1
    # ...and the rebuild replays the same delays for pre-existing nodes.
    assert (grown[: len(edges)] == before).all()
