"""End-to-end integration tests: the paper's storyline on real pipelines.

Each test strings several subsystems together the way the benchmarks (and a
downstream user) would.
"""

import pytest

from repro import (
    BufferedClockTree,
    ClockSchedule,
    ClockedArraySimulator,
    DifferenceModel,
    SummationModel,
    build_fir_array,
    build_hybrid,
    build_mesh_matmul,
    equipotential_tau,
    htree_for_array,
    linear_array,
    mesh,
    prove_skew_lower_bound,
    serpentine_clock,
    simulate_hybrid,
    spine_clock,
    max_skew_bound,
)
from repro.analysis.scaling import classify_growth
from repro.delay.variation import BoundedUniformVariation


class TestStoryLinearArraysScale:
    """Theorem 3 end-to-end: a 1D systolic computation stays correct at a
    fixed clock period as the array grows."""

    @pytest.mark.parametrize("taps", [4, 16, 48])
    def test_fir_correct_at_fixed_period_any_size(self, taps):
        weights = [((-1.0) ** j) * (j + 1) for j in range(taps)]
        xs = [float((i * 7) % 5 - 2) for i in range(taps + 10)]
        program = build_fir_array(weights, xs)
        order = ["snk"] + list(range(taps - 1, -1, -1)) + ["src"]
        buffered = BufferedClockTree(
            spine_clock(program.array, order=order),
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=taps),
        )
        fixed_period = 6.0  # independent of taps
        sched = ClockSchedule.from_buffered_tree(
            buffered, fixed_period, program.array.comm.nodes()
        )
        sim = ClockedArraySimulator(program, sched, delta=1.0)
        assert sim.minimum_safe_period() <= fixed_period
        result = sim.run()
        assert result.clean
        assert result.result == pytest.approx(program.run_lockstep())


class TestStoryTwoDimensionalWall:
    """Section V-B end-to-end: every scheme's sigma grows on meshes, the
    certificate proof validates, and the hybrid scheme rescues scaling."""

    def test_mesh_sigma_grows_under_every_scheme(self):
        from repro.clocktree.builders import kdtree_clock

        for builder in (htree_for_array, serpentine_clock, kdtree_clock):
            sizes, sigmas = [], []
            for n in (4, 8, 16):
                array = mesh(n, n)
                tree = builder(array)
                sigma = max(
                    0.1 * tree.path_length(a, b)
                    for a, b in array.communicating_pairs()
                )
                sizes.append(n)
                sigmas.append(sigma)
            assert sigmas[-1] > 1.5 * sigmas[0], builder.__name__

    def test_certificates_validate_across_sizes(self):
        for n in (4, 8, 12):
            array = mesh(n, n)
            cert = prove_skew_lower_bound(serpentine_clock(array), array, beta=0.1)
            cert.check()

    def test_hybrid_restores_constant_cycle(self):
        cycles = []
        taus = []
        for n in (8, 16, 32):
            array = mesh(n, n)
            cycles.append(
                simulate_hybrid(
                    build_hybrid(array, element_size=4.0), steps=25, delta=1.0
                ).cycle_time
            )
            taus.append(equipotential_tau(serpentine_clock(array)))
        assert max(cycles) == pytest.approx(min(cycles))
        assert taus[-1] > 3 * taus[0]


class TestStoryDifferenceVsSummation:
    """Section IV vs V: the H-tree wins under the difference model and
    loses to the spine under the summation model on 1D arrays."""

    def test_model_determines_the_winner(self):
        array = linear_array(64)
        from repro.clocktree.htree import dissection_tree_for_linear

        htree_like = dissection_tree_for_linear(array)
        spine = spine_clock(array)
        pairs = array.communicating_pairs()

        diff = DifferenceModel(m=1.0)
        summ = SummationModel(m=1.0, eps=0.1)
        # Difference model: dissection (equidistant) beats or ties spine.
        assert max_skew_bound(htree_like, pairs, diff) <= max_skew_bound(
            spine, pairs, diff
        )
        # Summation model: spine wins by a growing margin.
        assert max_skew_bound(spine, pairs, summ) < 0.1 * max_skew_bound(
            htree_like, pairs, summ
        )


class TestStoryMeshComputationUnderSkew:
    def test_matmul_on_htree_clocked_mesh(self):
        """A 2D computation under an H-tree clock with zero variation:
        equidistant arrivals reproduce lockstep exactly."""
        a = [[1.0, 2.0, 0.0], [0.5, -1.0, 3.0], [2.0, 2.0, 2.0]]
        b = [[1.0, 0.0, 1.0], [0.0, 1.0, -1.0], [1.0, 1.0, 0.0]]
        program = build_mesh_matmul(a, b)
        sched = ClockSchedule.ideal(program.array.comm.nodes(), period=5.0)
        sim = ClockedArraySimulator(program, sched, delta=1.0)
        result = sim.run()
        assert result.clean
        import numpy as np

        assert np.allclose(result.result, program.run_lockstep())


class TestGrowthLawsAcrossTheBoard:
    def test_spine_sigma_constant_dissection_linear(self):
        sizes = [8, 16, 32, 64, 128]
        spine_sigma, dissection_sigma = [], []
        summ = SummationModel(m=1.0, eps=0.1)
        from repro.clocktree.htree import dissection_tree_for_linear

        for n in sizes:
            array = linear_array(n)
            pairs = array.communicating_pairs()
            spine_sigma.append(max_skew_bound(spine_clock(array), pairs, summ))
            dissection_sigma.append(
                max_skew_bound(dissection_tree_for_linear(array), pairs, summ)
            )
        assert classify_growth(sizes, spine_sigma).law == "constant"
        assert classify_growth(sizes, dissection_sigma).law == "linear"
