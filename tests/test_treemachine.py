"""Tests for Section VIII: H-tree layouts, pipeline registers, and the
searching tree machine."""

import math

import pytest

from repro.treemachine.layout import htree_tree_layout, level_edge_lengths
from repro.treemachine.machine import SearchTreeMachine
from repro.treemachine.pipeline import pipeline_tree


class TestHtreeTreeLayout:
    def test_linear_area(self):
        """O(N) area: area / N bounded across depths (Mead & Rem)."""
        ratios = []
        for depth in (2, 4, 6, 8):
            array = htree_tree_layout(depth)
            ratios.append(array.layout.area / array.size)
        assert max(ratios) <= 3.0

    def test_bounding_box_side_is_sqrt_n(self):
        array = htree_tree_layout(8)  # 511 nodes, 256 leaves on 16x16
        box = array.layout.bounding_box()
        assert box.width == pytest.approx(16.0, abs=1.5)

    def test_per_level_edges_uniform(self):
        depth = 6
        array = htree_tree_layout(depth)
        for level in range(1, depth + 1):
            lengths = set()
            for index in range(2**level):
                child = (level, index)
                parent = (level - 1, index // 2)
                lengths.add(round(array.layout.distance(parent, child), 9))
            assert len(lengths) == 1, level

    def test_edge_lengths_halve_every_two_levels(self):
        array = htree_tree_layout(8)
        lengths = level_edge_lengths(array, 8)
        assert lengths[1] / lengths[3] == pytest.approx(2.0)
        assert lengths[3] / lengths[5] == pytest.approx(2.0)

    def test_root_edge_is_longest(self):
        lengths = level_edge_lengths(htree_tree_layout(6), 6)
        assert lengths[1] == max(lengths.values())

    def test_all_nodes_distinct_positions(self):
        array = htree_tree_layout(5)
        positions = {array.layout[c] for c in array.comm.nodes()}
        assert len(positions) == array.size

    def test_depth_zero(self):
        assert htree_tree_layout(0).size == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            htree_tree_layout(-1)


class TestPipelineTree:
    def test_segments_bounded(self):
        array = htree_tree_layout(8)
        pt = pipeline_tree(array, 8, segment_limit=1.0)
        assert pt.max_segment_length <= 1.0 + 1e-9

    def test_no_registers_needed_when_edges_short(self):
        array = htree_tree_layout(4)
        pt = pipeline_tree(array, 4, segment_limit=2.0)
        assert pt.total_registers == 0

    def test_register_count_per_level_uniform(self):
        array = htree_tree_layout(8)
        pt = pipeline_tree(array, 8, segment_limit=1.0)
        # Top levels (long edges) carry registers; bottom levels none.
        assert pt.registers_per_level[1] > 0
        assert pt.registers_per_level[8] == 0

    def test_latency_is_theta_sqrt_n(self):
        lat = {}
        for depth in (4, 6, 8):
            array = htree_tree_layout(depth)
            lat[depth] = pipeline_tree(array, depth, segment_limit=1.0).root_to_leaf_latency()
        # latency ~ c * sqrt(2^depth): doubling depth by 2 doubles latency.
        assert lat[6] / lat[4] == pytest.approx(2.0, rel=0.35)
        assert lat[8] / lat[6] == pytest.approx(2.0, rel=0.35)

    def test_register_area_constant_factor(self):
        array = htree_tree_layout(8)
        pt = pipeline_tree(array, 8, segment_limit=1.0)
        assert pt.register_area() <= 4.0 * array.size

    def test_register_pes_are_two_port(self):
        array = htree_tree_layout(6)
        pt = pipeline_tree(array, 6, segment_limit=1.0)
        pes = pt.register_pes()
        assert len(pes) == pt.total_registers

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            pipeline_tree(htree_tree_layout(3), 3, segment_limit=0)


class TestSearchTreeMachine:
    def test_membership_queries(self):
        machine = SearchTreeMachine(3)
        result = machine.run(
            [("ins", 4), ("ins", 11), ("q", 4), ("q", 5), ("q", 11)]
        )
        assert result.results == [True, False, True]

    def test_pipelined_machine_same_answers(self):
        depth = 4
        pt = pipeline_tree(htree_tree_layout(depth), depth, segment_limit=1.0)
        plain = SearchTreeMachine(depth)
        piped = SearchTreeMachine(depth, pipelined=pt)
        commands = [("ins", k) for k in (3, 7, 20, 21)] + [
            ("q", k) for k in (3, 4, 7, 19, 20, 21, 100)
        ]
        assert plain.run(commands).results == piped.run(commands).results

    def test_one_command_per_tick_throughput(self):
        machine = SearchTreeMachine(3)
        commands = [("ins", i) for i in range(8)] + [("q", i) for i in range(16)]
        result = machine.run(commands)
        assert result.interval_ticks == 1
        assert len(result.results) == 16

    def test_latency_grows_with_depth_only(self):
        shallow = SearchTreeMachine(2).run([("q", 1)])
        deep = SearchTreeMachine(5).run([("q", 1)])
        assert deep.latency_ticks > shallow.latency_ticks

    def test_pipelined_latency_reflects_registers(self):
        depth = 6
        pt = pipeline_tree(htree_tree_layout(depth), depth, segment_limit=0.5)
        piped = SearchTreeMachine(depth, pipelined=pt)
        plain = SearchTreeMachine(depth)
        r_p = piped.run([("q", 1)])
        r_0 = plain.run([("q", 1)])
        assert r_p.latency_ticks > r_0.latency_ticks

    def test_duplicate_inserts_idempotent(self):
        machine = SearchTreeMachine(2)
        result = machine.run([("ins", 9), ("ins", 9), ("q", 9)])
        assert result.results == [True]

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            SearchTreeMachine(0)
