"""Unit tests for the processing-element framework."""

import pytest

from repro.arrays.cells import (
    ConstantCell,
    DelayCell,
    FunctionCell,
    PE,
    RecordingSink,
    ScriptedSource,
)


class TestScriptedSource:
    def test_emits_script_in_order(self):
        src = ScriptedSource([10, 20, 30], targets=["t"])
        assert [src.fire({})["t"] for _ in range(3)] == [10, 20, 30]

    def test_exhausted_script_emits_none(self):
        src = ScriptedSource([1], targets=["t"])
        src.fire({})
        assert src.fire({})["t"] is None

    def test_reset_restarts(self):
        src = ScriptedSource([1, 2], targets=["t"])
        src.fire({})
        src.reset()
        assert src.fire({})["t"] == 1

    def test_multiple_targets(self):
        src = ScriptedSource([7], targets=["a", "b"])
        out = src.fire({})
        assert out == {"a": 7, "b": 7}


class TestRecordingSink:
    def test_records_per_source(self):
        sink = RecordingSink()
        sink.fire({"u": 1, "v": 9})
        sink.fire({"u": 2, "v": None})
        assert sink.received["u"] == [1, 2]
        assert sink.received["v"] == [9, None]

    def test_stream_drops_none_by_default(self):
        sink = RecordingSink()
        sink.fire({"u": None})
        sink.fire({"u": 5})
        assert sink.stream_from("u") == [5]
        assert sink.stream_from("u", drop_none=False) == [None, 5]

    def test_unknown_source_is_empty(self):
        assert RecordingSink().stream_from("nope") == []

    def test_reset_clears(self):
        sink = RecordingSink()
        sink.fire({"u": 1})
        sink.reset()
        assert sink.stream_from("u") == []


class TestDelayCell:
    def test_zero_extra_delay_forwards(self):
        cell = DelayCell(source="a", target="b")
        assert cell.fire({"a": 42}) == {"b": 42}

    def test_extra_delay_pipes(self):
        cell = DelayCell(source="a", target="b", extra_delay=2)
        outs = [cell.fire({"a": v})["b"] for v in (1, 2, 3, 4)]
        assert outs == [None, None, 1, 2]

    def test_reset_flushes_pipe(self):
        cell = DelayCell(source="a", target="b", extra_delay=1)
        cell.fire({"a": 1})
        cell.reset()
        assert cell.fire({"a": 2})["b"] is None

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DelayCell("a", "b", extra_delay=-1)


class TestConstantAndFunctionCells:
    def test_constant_cell(self):
        cell = ConstantCell(3.14, targets=["x", "y"])
        assert cell.fire({}) == {"x": 3.14, "y": 3.14}

    def test_function_cell_threads_state(self):
        def accumulate(state, inputs):
            total = state + sum(v for v in inputs.values() if v is not None)
            return total, {"out": total}

        cell = FunctionCell(accumulate, initial_state=0)
        assert cell.fire({"in": 2})["out"] == 2
        assert cell.fire({"in": 3})["out"] == 5

    def test_function_cell_reset(self):
        cell = FunctionCell(lambda s, i: (s + 1, {"out": s}), initial_state=0)
        cell.fire({})
        cell.fire({})
        cell.reset()
        assert cell.fire({})["out"] == 0

    def test_base_pe_fire_is_abstract(self):
        with pytest.raises(NotImplementedError):
            PE().fire({})
