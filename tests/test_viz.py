"""Tests for ASCII and SVG rendering."""

import pytest

from repro.arrays.topologies import hex_array, linear_array, mesh
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.viz.ascii_art import render_array, render_clock_tree, render_layout
from repro.viz.svg import figure_to_svg, save_svg


class TestRenderLayout:
    def test_marks_every_cell(self):
        art = render_layout(mesh(3, 4).layout)
        assert art.count("#") == 12

    def test_row_shape(self):
        art = render_layout(linear_array(5).layout)
        assert art == "#####"

    def test_labels(self):
        layout = Layout({"a": Point(0, 0), "b": Point(2, 0)})
        art = render_layout(layout, labels={"a": "A", "b": "B"})
        assert art == "A B"

    def test_scale(self):
        art = render_layout(linear_array(3).layout, scale=2.0)
        assert art == "# # #"

    def test_empty(self):
        assert render_layout(Layout()) == ""

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            render_layout(linear_array(2).layout, scale=0)


class TestRenderArray:
    def test_mesh_edges(self):
        art = render_array(mesh(2, 2))
        lines = art.splitlines()
        assert lines[0] == "#-#"
        assert lines[1] == "| |"
        assert lines[2] == "#-#"

    def test_hex_diagonals(self):
        art = render_array(hex_array(2, 2))
        assert "\\" in art

    def test_linear(self):
        assert render_array(linear_array(3)) == "#-#-#"


class TestRenderClockTree:
    def test_contains_root_and_metrics(self):
        array = linear_array(4)
        text = render_clock_tree(spine_clock(array))
        assert "(root)" in text
        assert "from root" in text

    def test_depth_limit_reports_hidden(self):
        array = mesh(4, 4)
        text = render_clock_tree(htree_for_array(array), max_depth=1)
        assert "more nodes below depth 1" in text

    def test_positions_flag(self):
        array = linear_array(3)
        text = render_clock_tree(spine_clock(array), show_positions=True)
        assert "@ (" in text

    def test_full_tree_lists_all_nodes(self):
        array = linear_array(4)
        tree = spine_clock(array)
        text = render_clock_tree(tree)
        assert len(text.splitlines()) == len(tree)


class TestSvg:
    def test_document_structure(self):
        array = mesh(3, 3)
        svg = figure_to_svg(array, htree_for_array(array), title="fig3b")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<title>fig3b</title>" in svg

    def test_counts_cells_and_edges(self):
        array = mesh(3, 3)
        svg = figure_to_svg(array)
        assert svg.count('class="cell"') == 9
        assert svg.count('class="comm"') == len(array.communicating_pairs())
        assert 'class="clock"' not in svg

    def test_clock_edges_present_with_tree(self):
        array = mesh(2, 2)
        tree = htree_for_array(array)
        svg = figure_to_svg(array, tree)
        assert svg.count('class="clock"') == len(tree) - 1

    def test_deterministic(self):
        array = linear_array(5)
        assert figure_to_svg(array) == figure_to_svg(array)

    def test_title_escaped(self):
        svg = figure_to_svg(linear_array(2), title="<b>&")
        assert "&lt;b&gt;&amp;" in svg

    def test_save_svg(self, tmp_path):
        path = tmp_path / "out.svg"
        save_svg(str(path), figure_to_svg(linear_array(3)))
        assert path.read_text().startswith("<svg")

    def test_save_rejects_non_svg(self, tmp_path):
        with pytest.raises(ValueError):
            save_svg(str(tmp_path / "x.svg"), "hello")

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            figure_to_svg(linear_array(2), unit=0)
