"""Property tests (hypothesis): static slack brackets the simulator.

The contract under test, over randomized designs:

* a design the analyzer certifies clean runs violation-free in
  :class:`ClockedArraySimulator` (soundness);
* clocking the same design below its minimum feasible period produces
  simulator violations, every one of them on an edge the analyzer
  flagged (the flagged set explains the observed set);
* the bisection period matches the closed-form oracle.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sta.analyzer import STAAnalyzer
from repro.sta.design import random_design
from repro.sta.slack import (
    analyze_slack,
    minimum_feasible_period,
    minimum_feasible_period_closed_form,
)

seeds = st.integers(min_value=0, max_value=10_000)


@given(seed=seeds)
@settings(max_examples=40, deadline=None)
def test_clean_construction_is_timing_clean_and_simulates_clean(seed):
    # Note: the full DRC verdict may still flag such a design (a star
    # scheme breaks the binary-tree rule A4); timing cleanliness is the
    # property the clean generator guarantees.
    design = random_design(seed, clean=True)
    report = STAAnalyzer(design).report()
    assert report.counts["stale"] == 0 and report.counts["race"] == 0
    result = design.simulator().run()
    assert result.clean, f"timing-clean but {len(result.violations)} violations"


@given(seed=seeds, shrink=st.floats(min_value=0.2, max_value=0.9))
@settings(max_examples=40, deadline=None)
def test_period_below_minimum_violates_on_flagged_edges(seed, shrink):
    design = random_design(seed, clean=True)
    need = minimum_feasible_period_closed_form(design, mode="exact")
    assume(need > 1e-6)  # wave-pipelined designs have no positive floor
    tight = design.with_period(need * shrink)
    analysis = analyze_slack(tight)
    stale = set(analysis.stale_edges())
    assert stale, "below the exact minimum there must be a negative slack edge"
    violated = {v.edge for v in tight.simulator().run().violations}
    assert violated, "simulator saw no violation below the minimum period"
    assert violated <= stale | set(analysis.race_edges())


@given(seed=seeds)
@settings(max_examples=40, deadline=None)
def test_simulated_violations_have_nonpositive_static_slack(seed):
    design = random_design(seed)  # clean or stressed, generator's choice
    analysis = analyze_slack(design)
    violated = {v.edge for v in design.simulator().run().violations}
    flagged = set(analysis.stale_edges()) | set(analysis.race_edges())
    assert violated <= flagged


@given(seed=seeds, mode=st.sampled_from(["exact", "bound"]))
@settings(max_examples=30, deadline=None)
def test_bisection_matches_closed_form(seed, mode):
    design = random_design(seed)
    bisect = minimum_feasible_period(design, mode=mode)
    closed = minimum_feasible_period_closed_form(design, mode=mode)
    assert abs(bisect - closed) <= 1e-6 * max(1.0, closed)


@given(seed=seeds, factor=st.floats(min_value=1.0, max_value=4.0))
@settings(max_examples=30, deadline=None)
def test_slack_monotone_in_period(seed, factor):
    design = random_design(seed, clean=True)
    wider = analyze_slack(design.with_period(design.period * factor))
    base = analyze_slack(design)
    assert (wider.setup_exact >= base.setup_exact - 1e-12).all()
    assert wider.timing_clean
