"""SharedArena / SharedTrialArena: zero-pickle structure shipping.

The arena's contract: attached views equal the source arrays exactly, a
pickled trial stays O(manifest) bytes no matter the payload size, and a
process-pool Monte-Carlo run over arena trials is bit-identical to the
serial path.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.montecarlo import run_trials
from repro.analysis.shared import (
    ArenaHandle,
    SharedArena,
    SharedMemoryTrial,
    SharedTrialArena,
)
from repro.arrays.topologies import mesh
from repro.clocktree.htree import htree_for_array
from repro.clocktree.sampler import CompiledSkewSampler


def _source_arrays():
    rng = np.random.default_rng(0)
    return {
        "a": rng.uniform(size=100),
        "b": np.arange(37, dtype=np.int64),
        "c": rng.uniform(size=(5, 7)),
    }


def _sampler():
    array = mesh(6, 6)
    return CompiledSkewSampler.from_tree(
        htree_for_array(array), array.communicating_pairs()
    )


def _build(arrays) -> CompiledSkewSampler:
    return CompiledSkewSampler.from_arrays(arrays)


def _run(state: CompiledSkewSampler, seed: int) -> float:
    return state.sample_max_skew(seed)


class TestSharedArena:
    def test_views_equal_source(self):
        source = _source_arrays()
        with SharedArena(source) as arena:
            attached = arena.arrays()
            for key, value in source.items():
                assert np.array_equal(attached[key], value)
                assert attached[key].dtype == value.dtype
                assert attached[key].shape == value.shape

    def test_views_are_read_only(self):
        with SharedArena(_source_arrays()) as arena:
            view = arena.arrays()["a"]
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_handle_pickles_small(self):
        big = {"x": np.zeros(1_000_000)}
        with SharedArena(big) as arena:
            assert len(pickle.dumps(arena.handle)) < 1024

    def test_alignment(self):
        with SharedArena(_source_arrays()) as arena:
            for spec in arena.handle.specs:
                assert spec.offset % 64 == 0

    def test_close_is_idempotent(self):
        arena = SharedArena(_source_arrays())
        arena.close()
        arena.close()  # must not raise

    def test_handle_reattaches_in_same_process(self):
        source = _source_arrays()
        with SharedArena(source) as arena:
            handle = ArenaHandle(name=arena.name, specs=arena.handle.specs)
            again = handle.arrays()
            assert np.array_equal(again["c"], source["c"])

    def test_empty_arena_allowed(self):
        with SharedArena({}) as arena:
            assert arena.arrays() == {}


class TestSharedMemoryTrial:
    def test_trial_pickles_small_and_runs(self):
        sampler = _sampler()
        arena = SharedTrialArena(sampler.arrays())
        try:
            trial = arena.trial(_build, _run)
            assert isinstance(trial, SharedMemoryTrial)
            assert len(pickle.dumps(trial)) < 2048
            for seed in (0, 3):
                assert trial(seed) == sampler.sample_max_skew(seed)
        finally:
            arena.close()

    def test_round_trip_through_pickle(self):
        sampler = _sampler()
        arena = SharedTrialArena(sampler.arrays())
        try:
            trial = pickle.loads(pickle.dumps(arena.trial(_build, _run)))
            assert trial(7) == sampler.sample_max_skew(7)
        finally:
            arena.close()


class TestRunTrialsIdentity:
    @pytest.mark.parametrize("executor,workers", [
        ("thread", 2), ("thread", 4), ("process", 2),
    ])
    def test_pool_summary_is_bit_identical(self, executor, workers):
        sampler = _sampler()
        serial = run_trials(sampler.sample_max_skew, 10, base_seed=5)
        arena = SharedTrialArena(sampler.arrays())
        try:
            trial = arena.trial(_build, _run)
            pooled = run_trials(
                trial, 10, base_seed=5, workers=workers, executor=executor
            )
        finally:
            arena.close()
        assert pooled == serial  # frozen dataclass: field-wise bit equality
