"""Unit tests for the clocking scheme registry."""

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.core.schemes import (
    available_schemes,
    build_scheme,
    register_scheme,
)


class TestRegistry:
    def test_builtin_schemes_present(self):
        names = {s.name for s in available_schemes()}
        assert {"htree", "spine", "serpentine", "kdtree", "star", "dissection-1d"} <= names

    def test_build_by_name(self):
        array = mesh(4, 4)
        tree = build_scheme("htree", array)
        assert all(c in tree for c in array.comm.nodes())

    def test_spine_on_linear(self):
        array = linear_array(8)
        tree = build_scheme("spine", array)
        assert tree.path_length(0, 1) == pytest.approx(1.0)

    def test_unknown_scheme_raises_with_choices(self):
        with pytest.raises(KeyError, match="htree"):
            build_scheme("bogus", mesh(2, 2))

    def test_register_and_use_custom(self):
        from repro.clocktree.builders import star_clock

        name = "test-custom-star"
        try:
            register_scheme(name, star_clock, "test scheme")
            tree = build_scheme(name, mesh(3, 3))
            assert all(tree.depth(c) == 1 for c in mesh(3, 3).comm.nodes())
        finally:
            # keep the global registry clean for other tests
            from repro.core import schemes as schemes_module

            schemes_module._REGISTRY.pop(name, None)

    def test_duplicate_registration_rejected(self):
        from repro.clocktree.builders import star_clock

        with pytest.raises(ValueError):
            register_scheme("htree", star_clock, "dup")

    def test_descriptions_nonempty(self):
        assert all(s.description for s in available_schemes())
