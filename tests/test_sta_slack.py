"""Unit tests for the static slack kernel (repro.sta.slack)."""

import numpy as np
import pytest

from repro.sta.design import design_for_workload, random_design
from repro.sta.slack import (
    FLAG_RACE,
    FLAG_STALE,
    SIM_TOL,
    analyze_slack,
    edge_lags,
    minimum_feasible_period,
    minimum_feasible_period_closed_form,
    pad_for_races,
)


@pytest.fixture(scope="module")
def clean_design():
    return design_for_workload("matvec", size=4, seed=11)


def test_slack_matches_schedule_arithmetic(clean_design):
    d = clean_design
    a = analyze_slack(d)
    for i, (u, v) in enumerate(a.edges):
        lead = d.schedule.offset(u) - d.schedule.offset(v)
        lag = d.edge_lag((u, v))
        assert a.setup_exact[i] == pytest.approx(d.period - (lead + lag), abs=1e-12)
        assert a.hold_exact[i] == pytest.approx(lead + lag, abs=1e-12)
        # bound mode is independent of the schedule offsets
        assert a.setup_bound[i] == pytest.approx(d.period - (a.sigma_ub[i] + lag))
        assert a.hold_bound[i] == pytest.approx(lag - a.sigma_ub[i])


def test_clean_design_is_clean_and_simulates_clean(clean_design):
    a = analyze_slack(clean_design)
    assert a.timing_clean
    assert not a.stale_edges() and not a.race_edges()
    assert clean_design.simulator().run().clean


def test_edge_lags_bit_identical_to_simulator(clean_design):
    sim_lags = clean_design.simulator().edge_lags()
    lags = edge_lags(clean_design)
    for edge, lag in zip(clean_design.edges(), lags):
        assert lag == sim_lags[edge]  # exact, not approx — shared arithmetic


def test_bisection_matches_closed_form(clean_design):
    for mode in ("exact", "bound"):
        bisect = minimum_feasible_period(clean_design, mode=mode)
        closed = minimum_feasible_period_closed_form(clean_design, mode=mode)
        assert bisect == pytest.approx(closed, rel=1e-6, abs=1e-6)


def test_unknown_mode_rejected(clean_design):
    with pytest.raises(ValueError, match="unknown slack mode"):
        minimum_feasible_period(clean_design, mode="vibes")


def test_below_minimum_period_goes_stale():
    d = design_for_workload("matmul", size=3, seed=5)
    need = minimum_feasible_period_closed_form(d, mode="exact")
    assert need > 0
    tight = d.with_period(need * 0.5)
    a = analyze_slack(tight)
    stale = a.stale_edges()
    assert stale
    rows = {r.edge: r for r in a.rows()}
    assert all(FLAG_STALE in rows[e].flags for e in stale)
    # the simulator violates on (a subset of) exactly those edges
    violated = {v.edge for v in tight.simulator().run().violations}
    assert violated and violated <= set(stale) | set(a.race_edges())


def test_at_minimum_period_is_feasible():
    d = design_for_workload("matmul", size=3, seed=5)
    need = minimum_feasible_period_closed_form(d, mode="exact")
    at = analyze_slack(d.with_period(need))
    assert not at.stale_edges()


def test_pad_for_races_clears_hold_hazards():
    # Unpadded stressed designs race; padding must fix every one of them.
    found = 0
    for seed in range(40):
        d = random_design(seed, clean=False)
        a = analyze_slack(d)
        if not a.race_edges():
            continue
        found += 1
        padded_design = d.with_period(d.period)
        padded_design.edge_padding = pad_for_races(padded_design)
        padded = analyze_slack(padded_design)
        assert not padded.race_edges()
        assert not padded_design.simulator().hold_hazards()
        rows = {r.edge: r for r in padded.rows()}
        assert all(FLAG_RACE not in rows[e].flags for e in padded.edges)
    assert found >= 3, "stressed generator produced too few racy designs"


def test_padding_never_negative(clean_design):
    assert all(p > 0 for p in pad_for_races(clean_design).values())


def test_race_floor_needs_padding():
    # An edge whose lag sits under the model's skew floor is flagged even
    # when the concrete schedule happens to be safe.
    for seed in range(60):
        d = random_design(seed, clean=False)
        a = analyze_slack(d)
        floor = a.race_floor_mask
        if floor.any():
            idx = int(np.argmax(floor))
            assert a.sigma_lb[idx] >= a.lag[idx] - SIM_TOL
            return
    pytest.skip("no floor-limited edge in the sampled designs")


def test_slack_monotone_in_period(clean_design):
    a1 = analyze_slack(clean_design)
    a2 = analyze_slack(clean_design.with_period(clean_design.period * 2))
    assert (a2.setup_exact >= a1.setup_exact).all()
    assert np.array_equal(a2.hold_exact, a1.hold_exact)  # period-independent


def test_arrays_are_read_only(clean_design):
    a = analyze_slack(clean_design)
    with pytest.raises(ValueError):
        a.setup_exact[0] = 0.0
