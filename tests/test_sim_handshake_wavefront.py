"""Tests for the signal-level 2D handshake wavefront mesh."""

import pytest

from repro.sim.handshake import run_handshake_wavefront
from repro.sim.selftimed import two_point_sampler


class TestWavefrontProtocol:
    def test_all_waves_complete(self):
        result = run_handshake_wavefront(3, 3, 10, lambda rng: 1.0)
        assert result.items == 10
        assert len(result.arrival_times) == 10

    def test_waves_arrive_in_order(self):
        result = run_handshake_wavefront(4, 3, 12, lambda rng: 1.0)
        assert result.arrival_times == sorted(result.arrival_times)

    def test_deterministic_cycle_law(self):
        """Same law as 1D: cycle = compute + 2 * wire."""
        for wire in (0.0, 0.25):
            result = run_handshake_wavefront(4, 4, 16, lambda rng: 1.0, wire_delay=wire)
            assert result.steady_cycle_time == pytest.approx(1.0 + 2 * wire, rel=0.05)

    def test_cycle_independent_of_mesh_size(self):
        small = run_handshake_wavefront(2, 2, 16, lambda rng: 1.0, wire_delay=0.2)
        large = run_handshake_wavefront(8, 8, 16, lambda rng: 1.0, wire_delay=0.2)
        assert large.steady_cycle_time == pytest.approx(
            small.steady_cycle_time, rel=0.05
        )

    def test_first_wave_latency_crosses_the_diagonal(self):
        result = run_handshake_wavefront(5, 7, 1, lambda rng: 1.0, wire_delay=0.0)
        # 5 + 7 - 1 cells on the critical path, one compute each.
        assert result.completion_time >= 11.0 - 1e-9

    def test_random_services_slow_the_mesh(self):
        uniform = run_handshake_wavefront(4, 4, 40, lambda rng: 1.0, seed=2)
        bursty = run_handshake_wavefront(
            4, 4, 40, two_point_sampler(1.0, 3.0, 0.2), seed=2
        )
        assert bursty.steady_cycle_time > uniform.steady_cycle_time

    def test_single_cell_mesh(self):
        result = run_handshake_wavefront(1, 1, 5, lambda rng: 1.0, wire_delay=0.1)
        assert len(result.arrival_times) == 5

    def test_reproducible(self):
        sampler = two_point_sampler(1.0, 2.0, 0.3)
        a = run_handshake_wavefront(3, 4, 15, sampler, seed=8)
        b = run_handshake_wavefront(3, 4, 15, sampler, seed=8)
        assert a.arrival_times == b.arrival_times

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_handshake_wavefront(0, 3, 5, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_handshake_wavefront(3, 3, 0, lambda rng: 1.0)
        with pytest.raises(ValueError):
            run_handshake_wavefront(3, 3, 5, lambda rng: 1.0, wire_delay=-0.1)
