"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestReport:
    def test_spine_on_linear(self, capsys):
        code, out, _ = run_cli(capsys, "report", "--topology", "linear", "--size", "32")
        assert code == 0
        assert "spine on linear-32" in out
        assert "sigma (model bound)" in out

    def test_htree_on_mesh_difference(self, capsys):
        code, out, _ = run_cli(
            capsys, "report", "--topology", "mesh", "--size", "4",
            "--scheme", "htree", "--model", "difference",
        )
        assert code == 0
        assert "difference model" in out

    def test_unknown_scheme_errors(self, capsys):
        code, _out, err = run_cli(capsys, "report", "--scheme", "bogus")
        assert code == 2
        assert "error" in err


class TestCompare:
    def test_linear_summation_ranks_spine_first(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--topology", "linear", "--size", "32",
            "--model", "summation",
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        first_scheme_row = lines[2]
        assert first_scheme_row.strip().startswith("spine")

    def test_mesh_difference_ranks_htree_first(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--topology", "mesh", "--size", "4",
            "--model", "difference",
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines[2].strip().startswith("htree")


class TestSweep:
    def test_spine_classified_constant(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--topology", "linear", "--scheme", "spine",
            "--sizes", "8,16,32,64",
        )
        assert code == 0
        assert "growth law: constant" in out

    def test_dissection_classified_linear(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--topology", "linear", "--scheme", "dissection-1d",
            "--sizes", "8,16,32,64,128",
        )
        assert code == 0
        assert "growth law: linear" in out

    def test_two_sizes_skip_classification(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--sizes", "8,16", "--topology", "linear"
        )
        assert code == 0
        assert "growth law" not in out


class TestLowerBound:
    def test_runs_certificates(self, capsys):
        code, out, _ = run_cli(capsys, "lower-bound", "--size", "8")
        assert code == 0
        assert "Section V-B proof" in out
        for scheme in ("htree", "serpentine", "kdtree"):
            assert scheme in out


class TestInverter:
    def test_default_reproduces_68x(self, capsys):
        code, out, _ = run_cli(capsys, "inverter", "--chips", "2")
        assert code == 0
        assert "67.9" in out or "68" in out.replace("67.96", "68")

    def test_custom_length(self, capsys):
        code, out, _ = run_cli(capsys, "inverter", "--stages", "256", "--chips", "2")
        assert code == 0
        assert "n=256" in out


class TestHybridAndSchemes:
    def test_hybrid_wins_at_scale(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "16")
        assert code == 0
        assert "hybrid wins" in out
        assert "True" in out

    def test_schemes_listing(self, capsys):
        code, out, _ = run_cli(capsys, "schemes")
        assert code == 0
        for name in ("htree", "spine", "serpentine", "kdtree", "star", "comm-tree"):
            assert name in out

    def test_advise_linear(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--topology", "linear", "--size", "64"
        )
        assert code == 0
        assert "spine" in out
        assert "rationale" in out

    def test_advise_mesh_difference(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--topology", "mesh", "--size", "8",
            "--model", "difference",
        )
        assert code == 0
        assert "htree" in out
