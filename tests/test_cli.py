"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestReport:
    def test_spine_on_linear(self, capsys):
        code, out, _ = run_cli(capsys, "report", "--topology", "linear", "--size", "32")
        assert code == 0
        assert "spine on linear-32" in out
        assert "sigma (model bound)" in out

    def test_htree_on_mesh_difference(self, capsys):
        code, out, _ = run_cli(
            capsys, "report", "--topology", "mesh", "--size", "4",
            "--scheme", "htree", "--model", "difference",
        )
        assert code == 0
        assert "difference model" in out

    def test_unknown_scheme_errors(self, capsys):
        code, _out, err = run_cli(capsys, "report", "--scheme", "bogus")
        assert code == 2
        assert "error" in err


class TestCompare:
    def test_linear_summation_ranks_spine_first(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--topology", "linear", "--size", "32",
            "--model", "summation",
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        first_scheme_row = lines[2]
        assert first_scheme_row.strip().startswith("spine")

    def test_mesh_difference_ranks_htree_first(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--topology", "mesh", "--size", "4",
            "--model", "difference",
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines[2].strip().startswith("htree")


class TestSweep:
    def test_spine_classified_constant(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--topology", "linear", "--scheme", "spine",
            "--sizes", "8,16,32,64",
        )
        assert code == 0
        assert "growth law: constant" in out

    def test_dissection_classified_linear(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--topology", "linear", "--scheme", "dissection-1d",
            "--sizes", "8,16,32,64,128",
        )
        assert code == 0
        assert "growth law: linear" in out

    def test_two_sizes_skip_classification(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--sizes", "8,16", "--topology", "linear"
        )
        assert code == 0
        assert "growth law" not in out


class TestLowerBound:
    def test_runs_certificates(self, capsys):
        code, out, _ = run_cli(capsys, "lower-bound", "--size", "8")
        assert code == 0
        assert "Section V-B proof" in out
        for scheme in ("htree", "serpentine", "kdtree"):
            assert scheme in out


class TestInverter:
    def test_default_reproduces_68x(self, capsys):
        code, out, _ = run_cli(capsys, "inverter", "--chips", "2")
        assert code == 0
        assert "67.9" in out or "68" in out.replace("67.96", "68")

    def test_custom_length(self, capsys):
        code, out, _ = run_cli(capsys, "inverter", "--stages", "256", "--chips", "2")
        assert code == 0
        assert "n=256" in out


class TestHybridAndSchemes:
    def test_hybrid_wins_at_scale(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "16")
        assert code == 0
        assert "hybrid wins" in out
        assert "True" in out

    def test_schemes_listing(self, capsys):
        code, out, _ = run_cli(capsys, "schemes")
        assert code == 0
        for name in ("htree", "spine", "serpentine", "kdtree", "star", "comm-tree"):
            assert name in out

    def test_advise_linear(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--topology", "linear", "--size", "64"
        )
        assert code == 0
        assert "spine" in out
        assert "rationale" in out

    def test_advise_mesh_difference(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--topology", "mesh", "--size", "8",
            "--model", "difference",
        )
        assert code == 0
        assert "htree" in out


class TestObservabilityFlags:
    def test_default_run_prints_no_metrics(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "8")
        assert code == 0
        assert "metrics:" not in out
        assert "phases:" not in out

    def test_metrics_flag_appends_metrics_and_phases(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "8", "--metrics")
        assert code == 0
        assert "metrics:" in out
        assert "hybrid.cycle_time" in out
        assert "hybrid.step_skew" in out
        assert "phases:" in out

    def test_trace_flag_writes_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code, out, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        from repro.obs.trace import load_trace

        events = load_trace(path)
        assert any(e.cat == "hybrid" and e.kind == "step" for e in events)
        assert events[0].cat == "cli" and events[0].data["command"] == "hybrid"

    def test_trace_output_identical_to_untraced(self, capsys, tmp_path):
        code, plain, _ = run_cli(capsys, "hybrid", "--size", "8")
        assert code == 0
        path = str(tmp_path / "run.jsonl")
        code, traced, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        assert traced == plain

    def test_inverter_trace_records_chips(self, capsys, tmp_path):
        path = str(tmp_path / "inv.jsonl")
        code, _out, _ = run_cli(
            capsys, "inverter", "--chips", "2", "--trace", path
        )
        assert code == 0
        from repro.obs.trace import load_trace

        chips = [e for e in load_trace(path) if e.kind == "chip"]
        assert len(chips) == 2
        assert all("speedup" in e.data for e in chips)


class TestTraceCommand:
    def test_replays_hybrid_trace(self, capsys, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code, _out, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        code, out, _ = run_cli(capsys, "trace", path)
        assert code == 0
        assert "events by category:" in out
        assert "hybrid" in out
        assert "skew histogram" in out
        assert "violation timeline" in out
        assert "the run was clean" in out

    def test_violation_timeline_from_clocked_trace(self, capsys, tmp_path):
        from repro.clocktree.buffered import BufferedClockTree
        from repro.clocktree.spine import spine_clock
        from repro.arrays.systolic import build_fir_array
        from repro.delay.variation import NoVariation
        from repro.obs.trace import JsonlTracer
        from repro.sim.clock_distribution import ClockSchedule
        from repro.sim.clocked import ClockedArraySimulator
        from repro.sim.faults import JitteredSchedule

        program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
        buffered = BufferedClockTree(
            spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
            wire_variation=NoVariation(),
        )
        base = ClockSchedule.from_buffered_tree(
            buffered, 4.0, program.array.comm.nodes()
        )
        path = str(tmp_path / "a8.jsonl")
        with JsonlTracer(path) as tracer:
            result = ClockedArraySimulator(
                program, JitteredSchedule(base, 1.9, seed=7), delta=1.0,
                tracer=tracer,
            ).run()
        assert not result.clean
        code, out, _ = run_cli(capsys, "trace", path)
        assert code == 0
        assert "violation timeline" in out
        assert "stale" in out
        assert "the run was clean" not in out

    def test_missing_file_errors(self, capsys, tmp_path):
        code, _out, err = run_cli(capsys, "trace", str(tmp_path / "absent.jsonl"))
        assert code == 2
        assert "error" in err

    def test_unwritable_trace_path_errors(self, capsys):
        code, _out, err = run_cli(
            capsys, "hybrid", "--size", "8", "--trace", "/nonexistent-dir/x.jsonl"
        )
        assert code == 2
        assert "error" in err


def _record_clocked_trace(path):
    from repro.obs.trace import JsonlTracer
    from repro.sta.design import random_design

    with JsonlTracer(path) as tracer:
        sim = random_design(0, clean=True).simulator(tracer=tracer)
        run = sim.run()
        sim.run_compiled()  # adds compiled-phase spans to the same trace
    return run


class TestCriticalPathCommand:
    def test_exact_chain_from_clocked_trace(self, capsys, tmp_path):
        path = str(tmp_path / "clocked.jsonl")
        run = _record_clocked_trace(path)
        code, out, _ = run_cli(capsys, "trace", path, "--critical-path")
        assert code == 0
        assert "(clocked engine)" in out
        assert f"makespan {run.makespan:.6g}" in out
        assert "exact" in out
        assert "blame" in out

    def test_non_causal_trace_errors(self, capsys, tmp_path):
        path = str(tmp_path / "hybrid.jsonl")
        code, _out, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        code, _out, err = run_cli(capsys, "trace", path, "--critical-path")
        assert code == 2
        assert "error" in err


class TestDashboardCommand:
    def test_text_dashboard(self, capsys, tmp_path):
        path = str(tmp_path / "clocked.jsonl")
        _record_clocked_trace(path)
        code, out, _ = run_cli(capsys, "dashboard", path)
        assert code == 0
        assert "events by category:" in out
        assert "span waterfall" in out
        assert "violation timeline" in out

    def test_html_dashboard(self, capsys, tmp_path):
        trace_path = str(tmp_path / "clocked.jsonl")
        _record_clocked_trace(trace_path)
        html_path = str(tmp_path / "dash.html")
        code, out, _ = run_cli(capsys, "dashboard", trace_path, "--html", html_path)
        assert code == 0
        assert "wrote" in out
        with open(html_path) as fh:
            html = fh.read()
        assert html.startswith("<!DOCTYPE html>")
        assert "Span waterfall" in html

    def test_missing_file_errors(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "dashboard", str(tmp_path / "absent.jsonl")
        )
        assert code == 2
        assert "error" in err


class TestMetricsExports:
    def test_metrics_print_on_diagnostic_exit(self, capsys):
        # A dirty design exits 1 (violations found) — exactly the run
        # worth inspecting, so the metrics table must still print.
        code, out, _ = run_cli(
            capsys, "sta", "--workload", "fir", "--size", "4", "--no-pad",
            "--metrics",
        )
        assert code == 1
        assert "metrics:" in out
        assert "sta.runs" in out

    def test_metrics_json_export(self, capsys, tmp_path):
        from repro.obs.schema import validate_metrics_snapshot
        import json

        path = str(tmp_path / "m.json")
        code, out, _ = run_cli(
            capsys, "hybrid", "--size", "8", "--metrics-json", path
        )
        assert code == 0
        assert "metrics:" not in out  # table only under --metrics
        with open(path) as fh:
            snapshot = json.load(fh)
        assert validate_metrics_snapshot(snapshot) == []
        assert "hybrid.steps" in snapshot["counters"]

    def test_metrics_prometheus_export(self, capsys, tmp_path):
        path = str(tmp_path / "m.prom")
        code, _out, _ = run_cli(
            capsys, "hybrid", "--size", "8", "--metrics-prom", path
        )
        assert code == 0
        with open(path) as fh:
            text = fh.read()
        assert "# TYPE repro_hybrid_steps counter" in text
        assert "repro_hybrid_steps_total" in text
