"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestReport:
    def test_spine_on_linear(self, capsys):
        code, out, _ = run_cli(capsys, "report", "--topology", "linear", "--size", "32")
        assert code == 0
        assert "spine on linear-32" in out
        assert "sigma (model bound)" in out

    def test_htree_on_mesh_difference(self, capsys):
        code, out, _ = run_cli(
            capsys, "report", "--topology", "mesh", "--size", "4",
            "--scheme", "htree", "--model", "difference",
        )
        assert code == 0
        assert "difference model" in out

    def test_unknown_scheme_errors(self, capsys):
        code, _out, err = run_cli(capsys, "report", "--scheme", "bogus")
        assert code == 2
        assert "error" in err


class TestCompare:
    def test_linear_summation_ranks_spine_first(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--topology", "linear", "--size", "32",
            "--model", "summation",
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        first_scheme_row = lines[2]
        assert first_scheme_row.strip().startswith("spine")

    def test_mesh_difference_ranks_htree_first(self, capsys):
        code, out, _ = run_cli(
            capsys, "compare", "--topology", "mesh", "--size", "4",
            "--model", "difference",
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines[2].strip().startswith("htree")


class TestSweep:
    def test_spine_classified_constant(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--topology", "linear", "--scheme", "spine",
            "--sizes", "8,16,32,64",
        )
        assert code == 0
        assert "growth law: constant" in out

    def test_dissection_classified_linear(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--topology", "linear", "--scheme", "dissection-1d",
            "--sizes", "8,16,32,64,128",
        )
        assert code == 0
        assert "growth law: linear" in out

    def test_two_sizes_skip_classification(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--sizes", "8,16", "--topology", "linear"
        )
        assert code == 0
        assert "growth law" not in out


class TestLowerBound:
    def test_runs_certificates(self, capsys):
        code, out, _ = run_cli(capsys, "lower-bound", "--size", "8")
        assert code == 0
        assert "Section V-B proof" in out
        for scheme in ("htree", "serpentine", "kdtree"):
            assert scheme in out


class TestInverter:
    def test_default_reproduces_68x(self, capsys):
        code, out, _ = run_cli(capsys, "inverter", "--chips", "2")
        assert code == 0
        assert "67.9" in out or "68" in out.replace("67.96", "68")

    def test_custom_length(self, capsys):
        code, out, _ = run_cli(capsys, "inverter", "--stages", "256", "--chips", "2")
        assert code == 0
        assert "n=256" in out


class TestHybridAndSchemes:
    def test_hybrid_wins_at_scale(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "16")
        assert code == 0
        assert "hybrid wins" in out
        assert "True" in out

    def test_schemes_listing(self, capsys):
        code, out, _ = run_cli(capsys, "schemes")
        assert code == 0
        for name in ("htree", "spine", "serpentine", "kdtree", "star", "comm-tree"):
            assert name in out

    def test_advise_linear(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--topology", "linear", "--size", "64"
        )
        assert code == 0
        assert "spine" in out
        assert "rationale" in out

    def test_advise_mesh_difference(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--topology", "mesh", "--size", "8",
            "--model", "difference",
        )
        assert code == 0
        assert "htree" in out


class TestObservabilityFlags:
    def test_default_run_prints_no_metrics(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "8")
        assert code == 0
        assert "metrics:" not in out
        assert "phases:" not in out

    def test_metrics_flag_appends_metrics_and_phases(self, capsys):
        code, out, _ = run_cli(capsys, "hybrid", "--size", "8", "--metrics")
        assert code == 0
        assert "metrics:" in out
        assert "hybrid.cycle_time" in out
        assert "hybrid.step_skew" in out
        assert "phases:" in out

    def test_trace_flag_writes_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code, out, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        from repro.obs.trace import load_trace

        events = load_trace(path)
        assert any(e.cat == "hybrid" and e.kind == "step" for e in events)
        assert events[0].cat == "cli" and events[0].data["command"] == "hybrid"

    def test_trace_output_identical_to_untraced(self, capsys, tmp_path):
        code, plain, _ = run_cli(capsys, "hybrid", "--size", "8")
        assert code == 0
        path = str(tmp_path / "run.jsonl")
        code, traced, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        assert traced == plain

    def test_inverter_trace_records_chips(self, capsys, tmp_path):
        path = str(tmp_path / "inv.jsonl")
        code, _out, _ = run_cli(
            capsys, "inverter", "--chips", "2", "--trace", path
        )
        assert code == 0
        from repro.obs.trace import load_trace

        chips = [e for e in load_trace(path) if e.kind == "chip"]
        assert len(chips) == 2
        assert all("speedup" in e.data for e in chips)


class TestTraceCommand:
    def test_replays_hybrid_trace(self, capsys, tmp_path):
        path = str(tmp_path / "run.jsonl")
        code, _out, _ = run_cli(capsys, "hybrid", "--size", "8", "--trace", path)
        assert code == 0
        code, out, _ = run_cli(capsys, "trace", path)
        assert code == 0
        assert "events by category:" in out
        assert "hybrid" in out
        assert "skew histogram" in out
        assert "violation timeline" in out
        assert "the run was clean" in out

    def test_violation_timeline_from_clocked_trace(self, capsys, tmp_path):
        from repro.clocktree.buffered import BufferedClockTree
        from repro.clocktree.spine import spine_clock
        from repro.arrays.systolic import build_fir_array
        from repro.delay.variation import NoVariation
        from repro.obs.trace import JsonlTracer
        from repro.sim.clock_distribution import ClockSchedule
        from repro.sim.clocked import ClockedArraySimulator
        from repro.sim.faults import JitteredSchedule

        program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
        buffered = BufferedClockTree(
            spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
            wire_variation=NoVariation(),
        )
        base = ClockSchedule.from_buffered_tree(
            buffered, 4.0, program.array.comm.nodes()
        )
        path = str(tmp_path / "a8.jsonl")
        with JsonlTracer(path) as tracer:
            result = ClockedArraySimulator(
                program, JitteredSchedule(base, 1.9, seed=7), delta=1.0,
                tracer=tracer,
            ).run()
        assert not result.clean
        code, out, _ = run_cli(capsys, "trace", path)
        assert code == 0
        assert "violation timeline" in out
        assert "stale" in out
        assert "the run was clean" not in out

    def test_missing_file_errors(self, capsys, tmp_path):
        code, _out, err = run_cli(capsys, "trace", str(tmp_path / "absent.jsonl"))
        assert code == 2
        assert "error" in err

    def test_unwritable_trace_path_errors(self, capsys):
        code, _out, err = run_cli(
            capsys, "hybrid", "--size", "8", "--trace", "/nonexistent-dir/x.jsonl"
        )
        assert code == 2
        assert "error" in err
