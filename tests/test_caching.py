"""Invalidation behaviour of the hot-path caches added for the batched
kernels: the CommGraph/ProcessorArray pair cache (keyed on the graph's
mutation counter), the ClockTree leaves cache, and the O(n) validate."""

import pytest

from repro.arrays.model import ProcessorArray
from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.htree import htree_for_array
from repro.clocktree.tree import ClockTree
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.graphs.comm import CommGraph


class TestCommGraphVersion:
    def test_version_bumps_on_new_node_and_edge(self):
        g = CommGraph()
        v0 = g.version
        g.add_node("a")
        assert g.version > v0
        v1 = g.version
        g.add_edge("a", "b")
        assert g.version > v1

    def test_version_stable_on_duplicate_adds(self):
        g = CommGraph(edges=[("a", "b")])
        v = g.version
        g.add_node("a")
        g.add_edge("a", "b")
        assert g.version == v

    def test_pairs_cache_invalidated_by_mutation(self):
        g = CommGraph(edges=[("a", "b"), ("b", "a")])
        assert g.communicating_pairs() == [("a", "b")]
        g.add_edge("b", "c")
        assert sorted(g.communicating_pairs()) == [("a", "b"), ("b", "c")]

    def test_pairs_are_a_fresh_copy(self):
        g = CommGraph(edges=[("a", "b")])
        pairs = g.communicating_pairs()
        pairs.append(("x", "y"))
        assert g.communicating_pairs() == [("a", "b")]


class TestProcessorArrayPairsCache:
    def test_repeated_calls_share_one_list(self):
        array = mesh(4, 4)
        assert array.communicating_pairs() is array.communicating_pairs()

    def test_cache_tracks_graph_mutation(self):
        array = linear_array(4)
        before = array.communicating_pairs()
        n = len(before)
        cells = array.comm.nodes()
        array.comm.add_edge(cells[0], cells[-1])
        after = array.communicating_pairs()
        assert len(after) == n + 1
        assert after is not before

    def test_max_communication_distance_uses_cache(self):
        array = mesh(3, 3)
        d1 = array.max_communication_distance()
        d2 = array.max_communication_distance()
        assert d1 == d2 == 1.0

    def test_pairs_match_uncached_graph_value(self):
        array = mesh(5, 5)
        assert sorted(array.communicating_pairs()) == sorted(
            array.comm.communicating_pairs()
        )


class TestLeavesCache:
    def test_leaves_cached_and_invalidated(self):
        tree = htree_for_array(mesh(4, 4))
        first = tree.leaves()
        assert tree.leaves() == first
        leaf = first[0]
        tree.add_child(leaf, "new-leaf", tree.position(leaf), length=1.0)
        updated = tree.leaves()
        assert "new-leaf" in updated
        assert leaf not in updated

    def test_leaves_returns_a_copy(self):
        tree = ClockTree("r", Point(0, 0))
        tree.add_child("r", "c", Point(1, 0))
        got = tree.leaves()
        got.clear()
        assert tree.leaves() == ["c"]


class TestValidateSinglePass:
    def test_valid_trees_pass(self):
        htree_for_array(mesh(4, 4)).validate()
        tree = ClockTree("r", Point(0, 0), max_children=3)
        for i in range(3):
            tree.add_child("r", i, Point(i + 1, 0))
        tree.validate()

    def test_detects_broken_parent_pointer(self):
        tree = ClockTree("r", Point(0, 0))
        tree.add_child("r", "a", Point(1, 0))
        tree.add_child("r", "b", Point(0, 1))
        tree._parent["a"] = "b"  # white-box corruption
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_unreachable_node(self):
        tree = ClockTree("r", Point(0, 0))
        tree.add_child("r", "a", Point(1, 0))
        tree._children["r"].remove("a")  # orphan "a"
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_arity_violation(self):
        tree = ClockTree("r", Point(0, 0), max_children=2)
        tree.add_child("r", "a", Point(1, 0))
        tree.add_child("r", "b", Point(0, 1))
        tree._children["r"].append("c")
        tree._parent["c"] = "r"
        tree._position["c"] = Point(1, 1)
        with pytest.raises(AssertionError):
            tree.validate()

    def test_detects_parent_cycle(self):
        tree = ClockTree("r", Point(0, 0))
        tree.add_child("r", "a", Point(1, 0))
        tree.add_child("a", "b", Point(2, 0))
        # Detach the a<->b pair into a parent cycle unreachable from r.
        tree._children["r"].remove("a")
        tree._parent["a"] = "b"
        tree._children["b"].append("a")
        tree._children["a"] = ["b"]
        with pytest.raises(AssertionError):
            tree.validate()


class TestHostValidationStillWorks:
    def test_missing_layout_position_raises(self):
        g = CommGraph(edges=[("a", "b")])
        layout = Layout()
        layout.place("a", Point(0, 0))
        with pytest.raises(ValueError):
            ProcessorArray(comm=g, layout=layout, name="broken")
