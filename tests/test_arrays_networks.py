"""Tests for the interconnection-network generators."""

import pytest

from repro.arrays.networks import butterfly, cube_connected_cycles, shuffle_exchange


class TestButterfly:
    def test_node_count(self):
        assert butterfly(3).size == 4 * 8

    def test_pair_count(self):
        # k levels of 2^k nodes, 2 undirected edges down from each.
        assert len(butterfly(3).communicating_pairs()) == 3 * 8 * 2

    def test_straight_and_cross_edges(self):
        a = butterfly(2)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        assert frozenset({(0, 0), (1, 0)}) in pairs      # straight
        assert frozenset({(0, 0), (1, 1)}) in pairs      # cross at level 0
        assert frozenset({(1, 0), (2, 2)}) in pairs      # cross at level 1

    def test_cross_span_doubles_per_level(self):
        a = butterfly(4)
        assert a.layout.distance((0, 0), (1, 1)) < a.layout.distance((3, 0), (4, 8))

    def test_connected_and_spaced(self):
        butterfly(3).validate()

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            butterfly(0)


class TestCCC:
    def test_node_count(self):
        assert cube_connected_cycles(3).size == 3 * 8

    def test_degree_three(self):
        a = cube_connected_cycles(3)
        assert all(a.comm.degree(n) == 3 for n in a.comm.nodes())

    def test_cycle_edges(self):
        a = cube_connected_cycles(3)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        assert frozenset({(0, 0), (0, 1)}) in pairs
        assert frozenset({(0, 2), (0, 0)}) in pairs  # wrap

    def test_cube_edges(self):
        a = cube_connected_cycles(3)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        assert frozenset({(0, 0), (1, 0)}) in pairs   # dimension 0
        assert frozenset({(0, 2), (4, 2)}) in pairs   # dimension 2

    def test_connected_and_spaced(self):
        cube_connected_cycles(4).validate()

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            cube_connected_cycles(2)


class TestShuffleExchange:
    def test_node_count(self):
        assert shuffle_exchange(4).size == 16

    def test_exchange_edges(self):
        a = shuffle_exchange(3)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        assert frozenset({0, 1}) in pairs
        assert frozenset({6, 7}) in pairs

    def test_shuffle_edges(self):
        a = shuffle_exchange(3)
        pairs = {frozenset(p) for p in a.communicating_pairs()}
        # rol(1, k=3) = 2; rol(3) = 6.
        assert frozenset({1, 2}) in pairs
        assert frozenset({3, 6}) in pairs

    def test_long_wires_in_row_layout(self):
        a = shuffle_exchange(6)
        assert a.max_communication_distance() > 16

    def test_connected(self):
        shuffle_exchange(5).validate()

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            shuffle_exchange(1)
