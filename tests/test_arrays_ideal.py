"""Unit tests for the ideal lockstep executor (A1 reference semantics)."""

import pytest

from repro.arrays.cells import DelayCell, RecordingSink, ScriptedSource
from repro.arrays.ideal import LockstepExecutor
from repro.graphs.comm import CommGraph


def pipeline(n_stages, script):
    """src -> stage_0 -> ... -> stage_{n-1} -> snk with pure delay cells."""
    comm = CommGraph()
    pes = {}
    prev = "src"
    pes["src"] = ScriptedSource(script, targets=[0])
    for i in range(n_stages):
        comm.add_edge(prev, i)
        nxt = i + 1 if i + 1 < n_stages else "snk"
        pes[i] = DelayCell(source=prev, target=nxt)
        prev = i
    comm.add_edge(prev, "snk")
    pes["snk"] = RecordingSink()
    return comm, pes


class TestLockstep:
    def test_edge_latency_is_one_cycle(self):
        comm, pes = pipeline(1, [42])
        ex = LockstepExecutor(comm, pes)
        ex.run(3)
        # src emits at cycle 1 (tick 0), stage sees it at tick 1, sink at 2.
        assert pes["snk"].stream_from(0) == [42]

    def test_values_traverse_in_order(self):
        comm, pes = pipeline(3, [1, 2, 3])
        ex = LockstepExecutor(comm, pes)
        ex.run(10)
        assert pes["snk"].stream_from(2) == [1, 2, 3]

    def test_latency_matches_stage_count(self):
        comm, pes = pipeline(4, [9])
        ex = LockstepExecutor(comm, pes, trace=True)
        ex.run(6)
        # value appears on the final edge at cycle index 4 (0-based trace).
        trace = ex.edge_trace[(3, "snk")]
        assert trace.index(9) == 4

    def test_missing_pe_rejected(self):
        comm = CommGraph(edges=[("a", "b")])
        with pytest.raises(ValueError):
            LockstepExecutor(comm, {"a": ScriptedSource([], targets=["b"])})

    def test_reset_restores_initial_state(self):
        comm, pes = pipeline(2, [5, 6])
        ex = LockstepExecutor(comm, pes)
        ex.run(8)
        first = list(pes["snk"].stream_from(1))
        ex.reset()
        ex.run(8)
        assert pes["snk"].stream_from(1) == first

    def test_cycle_counter(self):
        comm, pes = pipeline(1, [1])
        ex = LockstepExecutor(comm, pes)
        ex.run(5)
        assert ex.cycle == 5

    def test_negative_cycles_rejected(self):
        comm, pes = pipeline(1, [1])
        with pytest.raises(ValueError):
            LockstepExecutor(comm, pes).run(-1)

    def test_edge_value_inspection(self):
        comm, pes = pipeline(1, [7])
        ex = LockstepExecutor(comm, pes)
        ex.step()
        assert ex.edge_value("src", 0) == 7
        assert ex.edge_value(0, "snk") is None

    def test_trace_disabled_by_default(self):
        comm, pes = pipeline(1, [1])
        ex = LockstepExecutor(comm, pes)
        ex.run(2)
        assert ex.edge_trace == {}
