"""Tests for the clocking disciplines (A5's 'exact clocking method')."""

import pytest

from repro.core.disciplines import (
    PulseModeDiscipline,
    SinglePhaseDiscipline,
    TwoPhaseDiscipline,
)


class TestSinglePhase:
    def test_min_period_is_a5_plus_setup(self):
        d = SinglePhaseDiscipline(t_setup=0.5)
        assert d.min_period(sigma=1.0, delta=2.0, tau=3.0) == 6.5

    def test_contamination_delay_requirement(self):
        d = SinglePhaseDiscipline(t_hold=0.2)
        assert d.min_contamination_delay(sigma=1.0) == 1.2

    def test_evaluate_race_immunity(self):
        d = SinglePhaseDiscipline(t_hold=0.1)
        fast_path = d.evaluate(sigma=1.0, delta=1.0, tau=1.0, min_data_delay=0.5)
        slow_path = d.evaluate(sigma=1.0, delta=1.0, tau=1.0, min_data_delay=1.5)
        assert not fast_path.race_immune
        assert slow_path.race_immune

    def test_zero_skew_always_immune_with_positive_path(self):
        d = SinglePhaseDiscipline()
        assert d.evaluate(0.0, 1.0, 1.0, min_data_delay=0.01).race_immune

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SinglePhaseDiscipline(t_setup=-1)


class TestTwoPhase:
    def test_min_period_pays_two_gaps(self):
        d = TwoPhaseDiscipline(nonoverlap=0.5)
        single = SinglePhaseDiscipline()
        assert d.min_period(1, 1, 1) == single.min_period(1, 1, 1) + 1.0

    def test_race_immunity_by_gap(self):
        d = TwoPhaseDiscipline(nonoverlap=1.5, t_hold=0.2)
        assert d.race_immune(sigma=1.0)
        assert not d.race_immune(sigma=1.5)

    def test_required_nonoverlap(self):
        d = TwoPhaseDiscipline(nonoverlap=0.0, t_hold=0.3)
        assert d.required_nonoverlap(sigma=2.0) == 2.3

    def test_gap_buys_immunity_that_single_phase_lacks(self):
        """The classic trade: two-phase is race-immune at skew sigma with a
        big enough gap, where single-phase would need data-path padding —
        at the cost of a longer period."""
        sigma = 2.0
        two = TwoPhaseDiscipline(nonoverlap=2.0)
        one = SinglePhaseDiscipline()
        assert two.evaluate(sigma, 1.0, 1.0).race_immune
        assert not one.evaluate(sigma, 1.0, 1.0, min_data_delay=0.0).race_immune
        assert two.min_period(sigma, 1.0, 1.0) > one.min_period(sigma, 1.0, 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TwoPhaseDiscipline(nonoverlap=-0.1)


class TestPulseMode:
    def test_survival_against_distortion(self):
        d = PulseModeDiscipline(pulse_width=2.0, min_latch_pulse=0.5)
        assert d.pulse_survives(max_distortion=1.4)
        assert not d.pulse_survives(max_distortion=1.6)

    def test_absorbable_budget(self):
        d = PulseModeDiscipline(pulse_width=3.0, min_latch_pulse=1.0)
        assert d.max_absorbable_distortion() == 2.0

    def test_min_period_separates_pulses(self):
        d = PulseModeDiscipline(pulse_width=1.0)
        assert d.min_period(1, 1, 1) == 4.0

    def test_on_a_real_buffered_tree(self):
        """One-shot regeneration: evaluate against the actual worst pulse
        distortion of a biased buffered spine."""
        from repro.arrays.topologies import linear_array
        from repro.clocktree.buffered import BufferedClockTree
        from repro.clocktree.spine import spine_clock
        from repro.delay.buffer import InverterPairModel
        from repro.delay.variation import NoVariation

        array = linear_array(64)
        buffered = BufferedClockTree(
            spine_clock(array),
            wire_variation=NoVariation(),
            buffer_model=InverterPairModel(nominal=1.0, bias=0.02),
        )
        distortion = buffered.max_pulse_distortion()
        wide = PulseModeDiscipline(pulse_width=distortion + 1.0, min_latch_pulse=0.5)
        narrow = PulseModeDiscipline(pulse_width=distortion / 2, min_latch_pulse=0.1)
        assert wide.evaluate(1.0, 1.0, 1.0, max_distortion=distortion).race_immune
        assert not narrow.evaluate(1.0, 1.0, 1.0, max_distortion=distortion).race_immune

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            PulseModeDiscipline(pulse_width=0)
        with pytest.raises(ValueError):
            PulseModeDiscipline(pulse_width=1.0, min_latch_pulse=-1)
