"""Property tests for the million-cell machinery.

Two families, both driven by Hypothesis:

* chunked tick-matrix timing — for random grid shapes, offsets, and
  block sizes, ``CompiledTimingKernel.timing(..., edge_block=b)`` must
  equal the monolithic evaluation and the per-event scalar oracle
  exactly;
* shared-memory Monte-Carlo — for random trial counts, seeds, and pool
  shapes, ``run_trials`` over a :class:`SharedTrialArena` trial must be
  bit-identical to the serial path (the pickle path's contract,
  inherited by the zero-pickle one).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import run_trials
from repro.analysis.shared import SharedTrialArena
from repro.arrays.topologies import mesh
from repro.clocktree.htree import htree_for_array
from repro.clocktree.sampler import CompiledSkewSampler
from repro.graphs.csr import grid_csr
from repro.sim.compiled import CompiledTimingKernel


# ----------------------------------------------------------------------
# chunked == monolithic == scalar
# ----------------------------------------------------------------------
@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    seed=st.integers(0, 2**16),
    ticks=st.integers(1, 5),
    block=st.integers(1, 40),
    lag=st.floats(min_value=0.0, max_value=0.9,
                  allow_nan=False, allow_infinity=False),
)
@settings(max_examples=60, deadline=None)
def test_chunked_timing_equals_monolithic_and_scalar(
    rows, cols, seed, ticks, block, lag
):
    grid = grid_csr(rows, cols)
    rng = np.random.default_rng(seed)
    offsets = rng.uniform(0.0, 1.5, grid.n_cells)
    kernel = CompiledTimingKernel(grid, offsets, period=1.0, lag=lag)
    mono = kernel.timing(ticks)
    streamed = kernel.timing(ticks, edge_block=block)
    scalar = kernel.timing_scalar(ticks)
    assert streamed.violations == mono.violations == scalar.violations
    assert streamed.makespan == mono.makespan == scalar.makespan
    assert streamed.ticks == mono.ticks == scalar.ticks


@given(
    seed=st.integers(0, 2**16),
    block=st.integers(1, 500),
)
@settings(max_examples=20, deadline=None)
def test_chunked_timing_with_per_edge_lag(seed, block):
    grid = grid_csr(5, 5)
    rng = np.random.default_rng(seed)
    offsets = rng.uniform(0.0, 1.5, grid.n_cells)
    lag = rng.uniform(0.0, 0.8, grid.n_edges)
    kernel = CompiledTimingKernel(grid, offsets, period=1.0, lag=lag)
    mono = kernel.timing(4)
    streamed = kernel.timing(4, edge_block=block)
    assert streamed.violations == mono.violations
    assert streamed.makespan == mono.makespan


# ----------------------------------------------------------------------
# shared-memory pool == serial
# ----------------------------------------------------------------------
_SAMPLER = None


def _sampler() -> CompiledSkewSampler:
    global _SAMPLER
    if _SAMPLER is None:
        array = mesh(4, 4)
        _SAMPLER = CompiledSkewSampler.from_tree(
            htree_for_array(array), array.communicating_pairs()
        )
    return _SAMPLER


def _build(arrays) -> CompiledSkewSampler:
    return CompiledSkewSampler.from_arrays(arrays)


def _run(state: CompiledSkewSampler, seed: int) -> float:
    return state.sample_max_skew(seed)


@given(
    trials=st.integers(2, 8),
    base_seed=st.integers(0, 2**10),
    workers=st.integers(2, 5),
    executor=st.sampled_from(["thread", "process"]),
)
@settings(max_examples=12, deadline=None)
def test_arena_pool_is_bit_identical_to_serial(
    trials, base_seed, workers, executor
):
    sampler = _sampler()
    serial = run_trials(sampler.sample_max_skew, trials, base_seed=base_seed)
    arena = SharedTrialArena(sampler.arrays())
    try:
        trial = arena.trial(_build, _run)
        pooled = run_trials(
            trial, trials, base_seed=base_seed,
            workers=workers, executor=executor,
        )
    finally:
        arena.close()
    assert pooled == serial
