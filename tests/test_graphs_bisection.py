"""Unit tests for bisection width algorithms (Lemma 4 machinery)."""

import pytest

from repro.arrays.topologies import linear_array, mesh
from repro.graphs.bisection import (
    bisection_width_exact,
    bisection_width_kernighan_lin,
    bisection_width_spectral,
    bisection_width_upper_bound,
    mesh_bisection_lower_bound,
)
from repro.graphs.comm import CommGraph


def path_graph(n):
    return CommGraph(edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


class TestExact:
    def test_path_bisects_with_one_cut(self):
        result = bisection_width_exact(path_graph(8))
        assert result.cut_size == 1
        assert result.balance == 0.5

    def test_cycle_needs_two_cuts(self):
        assert bisection_width_exact(cycle_graph(8)).cut_size == 2

    def test_small_mesh(self):
        # 3x3 mesh: optimal balanced cut is 3 (cut along a grid line with
        # balance 2/3) — with max_fraction 2/3 the answer is 3.
        g = mesh(3, 3).comm
        result = bisection_width_exact(g, max_fraction=2 / 3)
        assert result.cut_size == 3

    def test_complete_graph(self):
        g = CommGraph()
        for i in range(6):
            for j in range(i + 1, 6):
                g.add_edge(i, j)
        assert bisection_width_exact(g).cut_size == 9  # 3*3 crossing pairs

    def test_partition_is_a_partition(self):
        g = path_graph(9)
        result = bisection_width_exact(g)
        assert result.part_a | result.part_b == set(g.nodes())
        assert not result.part_a & result.part_b

    def test_size_limit_enforced(self):
        with pytest.raises(ValueError):
            bisection_width_exact(path_graph(30))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            bisection_width_exact(CommGraph(nodes=[1]))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            bisection_width_exact(path_graph(4), max_fraction=0.3)


class TestHeuristics:
    def test_kl_matches_exact_on_path(self):
        g = path_graph(12)
        exact = bisection_width_exact(g).cut_size
        kl = bisection_width_kernighan_lin(g, rounds=8, seed=1).cut_size
        assert kl >= exact  # upper bound
        assert kl <= exact + 1

    def test_kl_on_cycle(self):
        assert bisection_width_kernighan_lin(cycle_graph(12), seed=2).cut_size == 2

    def test_spectral_on_path(self):
        assert bisection_width_spectral(path_graph(16)).cut_size == 1

    def test_spectral_on_mesh_near_grid_cut(self):
        # The 4x4 grid's Fiedler eigenvalue is degenerate (x and y modes),
        # so the spectral cut may be slightly above the optimal 4.
        g = mesh(4, 4).comm
        assert 4 <= bisection_width_spectral(g).cut_size <= 6

    def test_spectral_plus_kl_finds_grid_cut(self):
        g = mesh(4, 4).comm
        seed_part = set(bisection_width_spectral(g).part_a)
        refined = bisection_width_kernighan_lin(g, rounds=2, seed=0, initial=seed_part)
        assert refined.cut_size == 4

    def test_spectral_balance(self):
        result = bisection_width_spectral(mesh(4, 4).comm)
        assert result.balance == 0.5

    def test_upper_bound_dispatches_exact_for_tiny(self):
        g = path_graph(6)
        assert bisection_width_upper_bound(g).cut_size == 1

    def test_upper_bound_on_mesh(self):
        g = mesh(5, 5).comm
        result = bisection_width_upper_bound(g, seed=0)
        assert result.cut_size <= 7  # true width ~5-6 at near-balance
        assert result.cut_size >= 5

    def test_kl_deterministic_given_seed(self):
        g = mesh(4, 4).comm
        a = bisection_width_kernighan_lin(g, rounds=3, seed=5).cut_size
        b = bisection_width_kernighan_lin(g, rounds=3, seed=5).cut_size
        assert a == b


class TestMeshLowerBound:
    def test_linear_in_n(self):
        assert mesh_bisection_lower_bound(30) == pytest.approx(7.0)
        assert mesh_bisection_lower_bound(60) == pytest.approx(14.0)

    def test_tighter_balance_gives_bigger_bound(self):
        assert mesh_bisection_lower_bound(30, 0.5) > mesh_bisection_lower_bound(30, 0.9)

    def test_respected_by_exact_on_small_mesh(self):
        n = 4
        g = mesh(n, n).comm
        exact = bisection_width_exact(g, max_fraction=23 / 30, size_limit=16).cut_size
        assert exact >= mesh_bisection_lower_bound(n)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            mesh_bisection_lower_bound(1)
        with pytest.raises(ValueError):
            mesh_bisection_lower_bound(5, 0.2)
