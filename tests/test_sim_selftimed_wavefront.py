"""Tests for the 2D self-timed wavefront array."""

import pytest

from repro.sim.selftimed import (
    simulate_selftimed_wavefront,
    two_point_sampler,
    worst_case_path_probability,
)


class TestWavefront:
    def test_deterministic_services(self):
        result = simulate_selftimed_wavefront(4, 4, 50, lambda rng: 1.0)
        assert result.mean_cycle_time == pytest.approx(1.0)
        assert result.n_cells == 16

    def test_fill_latency_is_diagonal(self):
        # First wave completes after the critical path: rows + cols - 1.
        result = simulate_selftimed_wavefront(3, 5, 2, lambda rng: 1.0)
        assert result.completion_time >= 3 + 5 - 1

    def test_worst_case_fraction_tracks_path_length(self):
        p_worst = 0.05
        sampler = two_point_sampler(1.0, 2.0, p_worst)
        for n in (4, 8, 16):
            result = simulate_selftimed_wavefront(
                n, n, 400, sampler, seed=3, worst_time=2.0
            )
            predicted = worst_case_path_probability(1 - p_worst, 2 * n - 1)
            assert result.worst_case_fraction == pytest.approx(predicted, abs=0.08)

    def test_2d_hits_worst_case_more_than_1d_at_equal_cells(self):
        """rows+cols-1 path vs sqrt(N) cells: the 2D mesh's designated path
        is longer than... actually shorter; the point is the prediction
        composes per-path.  Compare same path lengths instead."""
        sampler = two_point_sampler(1.0, 2.0, 0.1)
        mesh_result = simulate_selftimed_wavefront(8, 8, 300, sampler, seed=5, worst_time=2.0)
        predicted = worst_case_path_probability(0.9, 15)
        assert mesh_result.worst_case_fraction == pytest.approx(predicted, abs=0.1)

    def test_cycle_between_bounds(self):
        sampler = two_point_sampler(1.0, 3.0, 0.2)
        result = simulate_selftimed_wavefront(6, 6, 200, sampler, seed=1)
        assert result.best_case_cycle <= result.mean_cycle_time
        assert result.mean_cycle_time <= result.worst_case_cycle

    def test_rectangular(self):
        result = simulate_selftimed_wavefront(2, 10, 50, lambda rng: 1.0)
        assert result.mean_cycle_time == pytest.approx(1.0)

    def test_reproducible(self):
        sampler = two_point_sampler(1.0, 2.0, 0.1)
        a = simulate_selftimed_wavefront(5, 5, 100, sampler, seed=9)
        b = simulate_selftimed_wavefront(5, 5, 100, sampler, seed=9)
        assert a.completion_time == b.completion_time

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_selftimed_wavefront(0, 4, 10, lambda rng: 1.0)
        with pytest.raises(ValueError):
            simulate_selftimed_wavefront(4, 4, 1, lambda rng: 1.0)
