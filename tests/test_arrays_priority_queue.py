"""Tests for the systolic priority queue."""

import random

import pytest

from repro.arrays.priority_queue import (
    PriorityQueueCell,
    build_priority_queue,
    reference_priority_queue,
)


def ops_sequence(*items):
    out = []
    for item in items:
        if item == "ext":
            out.append(("ext", None))
        else:
            out.append(("ins", float(item)))
    return out


class TestBasics:
    def test_single_insert_extract(self):
        got = build_priority_queue(ops_sequence(5, "ext")).run_lockstep()
        assert got == [5.0]

    def test_extract_returns_min(self):
        got = build_priority_queue(ops_sequence(7, 3, 9, "ext")).run_lockstep()
        assert got == [3.0]

    def test_successive_extracts_sorted(self):
        ops = ops_sequence(4, 1, 3, 2, "ext", "ext", "ext", "ext")
        got = build_priority_queue(ops).run_lockstep()
        assert got == [1.0, 2.0, 3.0, 4.0]

    def test_interleaved_ops(self):
        ops = ops_sequence(5, "ext", 2, 8, "ext", 1, "ext", "ext")
        got = build_priority_queue(ops).run_lockstep()
        assert got == reference_priority_queue(ops)

    def test_extract_from_empty_returns_none(self):
        got = build_priority_queue(ops_sequence("ext")).run_lockstep()
        assert got == [None]

    def test_duplicates(self):
        ops = ops_sequence(2, 2, 1, "ext", "ext", "ext")
        got = build_priority_queue(ops).run_lockstep()
        assert got == [1.0, 2.0, 2.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            build_priority_queue(ops_sequence(1, 2, 3), n_cells=2)
        with pytest.raises(ValueError):
            build_priority_queue([("pop", None)])

    def test_reference_matches_heapq_semantics(self):
        ops = ops_sequence(3, 1, "ext", 2, "ext", "ext")
        assert reference_priority_queue(ops) == [1.0, 2.0, 3.0]


class TestRandomized:
    @pytest.mark.parametrize("seed", range(6))
    def test_against_reference(self, seed):
        rng = random.Random(seed)
        ops = []
        live = 0
        for _ in range(rng.randint(5, 40)):
            if live > 0 and rng.random() < 0.45:
                ops.append(("ext", None))
                live -= 1
            else:
                ops.append(("ins", float(rng.randint(0, 50))))
                live += 1
        while live:
            ops.append(("ext", None))
            live -= 1
        got = build_priority_queue(ops).run_lockstep()
        assert got == reference_priority_queue(ops)

    def test_queue_stays_locally_sorted(self):
        """Invariant between waves: each cell's value <= right neighbor's."""
        ops = ops_sequence(9, 4, 7, 1, 8, 2)
        program = build_priority_queue(ops)
        from repro.arrays.ideal import LockstepExecutor

        executor = LockstepExecutor(program.array.comm, program.pes)
        executor.reset()
        executor.run(program.cycles)
        values = []
        for i in range(6):
            pe = executor.pe(i)
            if isinstance(pe, PriorityQueueCell) and pe.value is not None:
                values.append(pe.value)
        assert values == sorted(values)

    def test_constant_front_latency(self):
        """The answer to an extract arrives a fixed 2 ticks after the
        command regardless of queue length — the O(1)-per-op property."""
        for n_items in (2, 16, 64):
            items = list(range(n_items, 0, -1))
            ops = ops_sequence(*items, "ext")
            program = build_priority_queue(ops)
            got = program.run_lockstep()
            assert got == [1.0]
