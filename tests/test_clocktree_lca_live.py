"""The live lifting LCA index: incremental growth, subtree queries, and
in-place edge retunes.

The index shares the tree's :class:`DenseTreeStore` and extends its
binary-lifting table lazily — ``add_child`` and ``set_edge_length`` must
never force a rebuild, and every query must agree with the snapshot
:class:`EulerTourIndex` oracle over the same tree.
"""

import random

import numpy as np
import pytest

from repro.clocktree.lca import EulerTourIndex, LiftingLCAIndex
from repro.clocktree.tree import ClockTree
from repro.geometry.point import Point


def random_tree(seed, n=60):
    rng = random.Random(seed)
    tree = ClockTree("root", Point(0.0, 0.0))
    nodes = ["root"]
    for k in range(n):
        parent = rng.choice(
            [node for node in nodes if len(tree.children(node)) < 2]
        )
        node = f"n{k}"
        tree.add_child(
            parent, node,
            Point(rng.uniform(-5, 5), rng.uniform(-5, 5)),
            rng.uniform(0.1, 3.0),
        )
        nodes.append(node)
    return tree, nodes


def euler_oracle(tree):
    return EulerTourIndex(
        tree.nodes()[0],
        tree.children_map(),
        {node: tree.root_distance(node) for node in tree.nodes()},
    )


def sample_pairs(rng, nodes, k=40):
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(k)]


def test_path_metrics_agree_with_euler_oracle():
    tree, nodes = random_tree(1)
    rng = random.Random(11)
    pairs = sample_pairs(rng, nodes)
    live = tree.lca_index()
    d1, s1 = live.path_metrics(pairs)
    d2, s2 = euler_oracle(tree).path_metrics(pairs)
    assert d1.tobytes() == d2.tobytes()
    assert s1.tobytes() == s2.tobytes()


def test_index_extends_incrementally_across_growth():
    tree, nodes = random_tree(2, n=20)
    live = tree.lca_index()
    rng = random.Random(3)
    live.path_metrics(sample_pairs(rng, nodes))  # force a first sync
    for round_no in range(4):
        for k in range(15):
            parent = rng.choice(
                [n for n in tree.nodes() if len(tree.children(n)) < 2]
            )
            node = f"g{round_no}.{k}"
            tree.add_child(parent, node, Point(0.0, 0.0), rng.uniform(0.1, 2.0))
            nodes.append(node)
        # the SAME index object answers correctly after growth (no rebuild)
        assert tree.lca_index() is live
        pairs = sample_pairs(rng, nodes)
        d1, s1 = live.path_metrics(pairs)
        d2, s2 = euler_oracle(tree).path_metrics(pairs)
        assert d1.tobytes() == d2.tobytes()
        assert s1.tobytes() == s2.tobytes()


def brute_in_subtree(tree, ancestor):
    return set(tree.subtree_nodes(ancestor))


def test_subtree_queries_match_brute_force():
    tree, nodes = random_tree(4)
    live = tree.lca_index()
    rng = random.Random(5)
    for node in rng.sample(nodes, 10):
        inside = brute_in_subtree(tree, node)
        nid = live.node_id(node)
        ids = live.node_ids(nodes)
        mask = live.in_subtree_ids(nid, ids)
        assert {n for n, m in zip(nodes, mask) if m} == inside
        # interval-based mask agrees with the lifting-based test
        full_mask = live.subtree_mask(nid)
        assert {live.node(i) for i in np.flatnonzero(full_mask)} == inside
        assert live.subtree_size(nid) == len(inside)


def test_pairs_through_node_is_xor_of_membership():
    tree, nodes = random_tree(6)
    live = tree.lca_index()
    rng = random.Random(7)
    pairs = sample_pairs(rng, nodes)
    a_ids = live.node_ids([a for a, _ in pairs])
    b_ids = live.node_ids([b for _, b in pairs])
    node = nodes[len(nodes) // 2]
    inside = brute_in_subtree(tree, node)
    expected = np.array(
        [(a in inside) != (b in inside) for a, b in pairs], dtype=bool
    )
    got = live.pairs_through_node(live.node_id(node), a_ids, b_ids)
    assert got.tobytes() == expected.tobytes()


def test_set_edge_length_shifts_subtree_and_metrics():
    tree, nodes = random_tree(8)
    node = nodes[5]
    inside = brute_in_subtree(tree, node)
    before = {n: tree.root_distance(n) for n in nodes}
    v0 = tree.version
    tree.set_edge_length(node, 10.0)
    assert tree.version > v0
    assert tree.edge_length(node) == 10.0
    for n in nodes:
        if n in inside:
            assert tree.root_distance(n) != before[n]
        else:
            assert tree.root_distance(n) == before[n]
    # metrics recompute correctly through the live index afterwards
    rng = random.Random(9)
    pairs = sample_pairs(rng, nodes)
    d1, s1 = tree.lca_index().path_metrics(pairs)
    d2, s2 = euler_oracle(tree).path_metrics(pairs)
    assert d1.tobytes() == d2.tobytes()
    assert s1.tobytes() == s2.tobytes()


def test_set_edge_length_validation():
    tree, _ = random_tree(10, n=5)
    with pytest.raises(ValueError):
        tree.set_edge_length("root", 1.0)
    with pytest.raises(KeyError):
        tree.set_edge_length("missing", 1.0)
    with pytest.raises(ValueError):
        tree.set_edge_length("n0", -1.0)


def test_from_arrays_builder_matches_store_backed_index():
    tree, nodes = random_tree(12)
    store = tree.dense_store
    built = LiftingLCAIndex.from_arrays(
        [(node, store.id[node]) for node in store.nodes],
        list(store.nodes),
        store.parent[: len(tree)].copy(),
        store.depth[: len(tree)].copy(),
        store.rd[: len(tree)].copy(),
    )
    rng = random.Random(13)
    pairs = sample_pairs(rng, nodes)
    d1, s1 = built.path_metrics(pairs)
    d2, s2 = tree.lca_index().path_metrics(pairs)
    assert d1.tobytes() == d2.tobytes()
    assert s1.tobytes() == s2.tobytes()


def test_cold_build_is_vectorized_equivalent():
    """The perf row's correctness half: a fresh LiftingLCAIndex over the
    dense store answers exactly like the Euler-tour snapshot."""
    tree, nodes = random_tree(14, n=200)
    rng = random.Random(15)
    pairs = sample_pairs(rng, nodes, k=120)
    fresh = LiftingLCAIndex(tree.dense_store)
    d1, s1 = fresh.path_metrics(pairs)
    d2, s2 = euler_oracle(tree).path_metrics(pairs)
    assert d1.tobytes() == d2.tobytes()
    assert s1.tobytes() == s2.tobytes()
