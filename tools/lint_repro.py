"""Repo-specific static lint: invariants generic linters can't know.

Five rules, each an AST pass over ``src/repro``:

* **batch-oracle** — every ``*_batch`` kernel must have a scalar oracle
  counterpart in the same scope (``X`` or ``X_scalar`` next to
  ``X_batch``), so the differential suites always have a reference to
  compare the vectorized path against.  A small allowlist maps kernels
  whose oracle is split across differently-named scalars.
* **seeded-random** — no unseeded randomness outside ``tests/``: calls
  like ``random.random()`` / ``np.random.rand()`` draw from ambient
  global state and break run-to-run determinism (A8 in spirit).
  ``random.Random(seed)`` instances and ``np.random.default_rng(seed)``
  are the sanctioned forms.
* **simulator-kwargs** — every public ``*Simulator`` class in
  ``repro.sim`` must accept the opt-in ``tracer=`` and ``metrics=``
  observability kwargs (the PR-1 convention).
* **flow-oracle** — inside ``repro.sta``, every flow-analysis kernel
  must have a paired scalar oracle in the same module: a policy-
  iteration solver ``X_howard`` needs ``X_karp`` or ``X_scalar``, and a
  convergence simulator ``simulate_X`` needs ``simulate_X_scalar`` —
  the differential suites (``differential-mcm``) compare the production
  kernel against the oracle bit-for-bit, so a kernel without one is
  untestable by construction.
* **guarded-trace-event** — outside ``repro.obs`` itself, every
  ``<tracer>.event(...)`` call must sit inside an ``if ....enabled:``
  guard: constructing event payloads unconditionally makes disabled
  tracing cost real time on hot paths, which breaks the
  zero-overhead-when-off contract.  (``SpanTracer.span`` is exempt —
  the span layer checks ``enabled`` internally.)

Run as a script (``python tools/lint_repro.py``) or via the pytest in
``tests/test_lint_repro.py`` (part of the tier-1 suite, hence CI).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Batch kernels whose scalar oracle is split across differently-named
#: functions; maps (scope, kernel) to the scalar names that must exist.
BATCH_ORACLE_ALLOWLIST: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("ClockTree", "path_metrics_batch"): ("path_difference", "path_length"),
}


@dataclass(frozen=True)
class LintViolation:
    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _iter_sources(root: Path) -> Iterable[Path]:
    return sorted(root.rglob("*.py"))


def _function_names(body: Sequence[ast.stmt]) -> List[ast.FunctionDef]:
    return [
        node
        for node in body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


# ----------------------------------------------------------------------
# rule: batch-oracle
# ----------------------------------------------------------------------
def _check_batch_scope(
    scope_name: str,
    body: Sequence[ast.stmt],
    rel: str,
    violations: List[LintViolation],
) -> None:
    functions = _function_names(body)
    names = {f.name for f in functions}
    for func in functions:
        if not func.name.endswith("_batch"):
            continue
        base = func.name[: -len("_batch")]
        required = BATCH_ORACLE_ALLOWLIST.get(
            (scope_name, func.name), (base, base + "_scalar")
        )
        if not any(candidate in names for candidate in required):
            violations.append(
                LintViolation(
                    "batch-oracle",
                    rel,
                    func.lineno,
                    f"{scope_name}.{func.name} has no scalar oracle "
                    f"(expected one of {', '.join(required)})",
                )
            )


def check_batch_oracles(tree: ast.Module, rel: str) -> List[LintViolation]:
    violations: List[LintViolation] = []
    _check_batch_scope("<module>", tree.body, rel, violations)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _check_batch_scope(node.name, node.body, rel, violations)
    return violations


# ----------------------------------------------------------------------
# rule: seeded-random
# ----------------------------------------------------------------------
def _attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """``np.random.rand`` -> ["np", "random", "rand"]; None if not a plain
    name/attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def check_seeded_random(tree: ast.Module, rel: str) -> List[LintViolation]:
    violations: List[LintViolation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if chain is None:
            continue
        if chain[0] == "random" and len(chain) == 2:
            # random.Random(seed) builds an owned, seedable stream; every
            # other module-level call draws from ambient global state.
            if chain[1] != "Random":
                violations.append(
                    LintViolation(
                        "seeded-random",
                        rel,
                        node.lineno,
                        f"module-level random.{chain[1]}() draws from global "
                        "state; use random.Random(seed)",
                    )
                )
        elif chain[0] in ("np", "numpy") and len(chain) >= 2 and chain[1] == "random":
            tail = chain[2] if len(chain) > 2 else ""
            if tail == "default_rng" and node.args:
                continue  # seeded generator — the sanctioned form
            violations.append(
                LintViolation(
                    "seeded-random",
                    rel,
                    node.lineno,
                    f"{'.'.join(chain)}() is unseeded global numpy "
                    "randomness; use np.random.default_rng(seed)",
                )
            )
    return violations


# ----------------------------------------------------------------------
# rule: flow-oracle
# ----------------------------------------------------------------------
def check_flow_oracles(tree: ast.Module, rel: str) -> List[LintViolation]:
    """Inside ``repro.sta``: ``X_howard`` kernels need an ``X_karp`` /
    ``X_scalar`` sibling; ``simulate_X`` convergence loops need a
    ``simulate_X_scalar`` sibling."""
    if not rel.replace("\\", "/").startswith("sta/"):
        return []
    violations: List[LintViolation] = []
    functions = _function_names(tree.body)
    names = {f.name for f in functions}
    for func in functions:
        if func.name.endswith("_howard"):
            base = func.name[: -len("_howard")]
            required = (base + "_karp", base + "_scalar")
        elif (
            func.name.startswith("simulate_")
            and not func.name.endswith("_scalar")
        ):
            required = (func.name + "_scalar",)
        else:
            continue
        if not any(candidate in names for candidate in required):
            violations.append(
                LintViolation(
                    "flow-oracle",
                    rel,
                    func.lineno,
                    f"flow kernel {func.name} has no paired scalar oracle "
                    f"(expected one of {', '.join(required)})",
                )
            )
    return violations


# ----------------------------------------------------------------------
# rule: simulator-kwargs
# ----------------------------------------------------------------------
def check_simulator_kwargs(tree: ast.Module, rel: str) -> List[LintViolation]:
    if not rel.replace("\\", "/").startswith("sim/"):
        return []
    violations: List[LintViolation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Simulator") or node.name.startswith("_"):
            continue
        init = next(
            (f for f in _function_names(node.body) if f.name == "__init__"), None
        )
        if init is None:
            continue
        params = {a.arg for a in init.args.args} | {
            a.arg for a in init.args.kwonlyargs
        }
        missing = [k for k in ("tracer", "metrics") if k not in params]
        if missing:
            violations.append(
                LintViolation(
                    "simulator-kwargs",
                    rel,
                    node.lineno,
                    f"public simulator {node.name} lacks opt-in "
                    f"{'/'.join(missing)} kwarg(s)",
                )
            )
    return violations


# ----------------------------------------------------------------------
# rule: guarded-trace-event
# ----------------------------------------------------------------------
def _test_mentions_enabled(test: ast.expr) -> bool:
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id == "enabled":
            return True
    return False


def check_guarded_trace_events(tree: ast.Module, rel: str) -> List[LintViolation]:
    """Flag ``<tracer>.event(...)`` calls not lexically inside an
    ``if ... .enabled`` test (``repro.obs`` itself is exempt: the tracer
    implementations and the span layer are where the checks live)."""
    if rel.replace("\\", "/").startswith("obs/"):
        return []
    violations: List[LintViolation] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "event":
                chain = _attribute_chain(node.func)
                if (
                    chain is not None
                    and any("tracer" in part.lower() for part in chain[:-1])
                    and not guarded
                ):
                    violations.append(
                        LintViolation(
                            "guarded-trace-event",
                            rel,
                            node.lineno,
                            f"{'.'.join(chain)}(...) builds a trace event "
                            "outside an 'if ... .enabled' guard; disabled "
                            "tracing must cost nothing",
                        )
                    )
        if isinstance(node, ast.If):
            body_guarded = guarded or _test_mentions_enabled(node.test)
            visit(node.test, guarded)
            for child in node.body:
                visit(child, body_guarded)
            for child in node.orelse:
                visit(child, guarded)
            return
        if isinstance(node, ast.IfExp):
            visit(node.test, guarded)
            visit(node.body, guarded or _test_mentions_enabled(node.test))
            visit(node.orelse, guarded)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(tree, False)
    return violations


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def lint_source(source: str, rel: str) -> List[LintViolation]:
    """All rules over one file's source text (``rel`` is the path relative
    to ``src/repro``, used for rule scoping and messages)."""
    tree = ast.parse(source, filename=rel)
    violations = check_batch_oracles(tree, rel)
    violations += check_seeded_random(tree, rel)
    violations += check_flow_oracles(tree, rel)
    violations += check_simulator_kwargs(tree, rel)
    violations += check_guarded_trace_events(tree, rel)
    return violations


def lint_tree(root: Path = SRC_ROOT) -> List[LintViolation]:
    violations: List[LintViolation] = []
    for path in _iter_sources(root):
        rel = str(path.relative_to(root))
        violations.extend(lint_source(path.read_text(encoding="utf-8"), rel))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    root = Path(argv[0]) if argv else SRC_ROOT
    violations = lint_tree(root)
    for v in violations:
        print(v)
    print(f"{len(violations)} violation(s) in {root}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
