"""Exp L1 — Lemma 1's area accounting, measured.

"It is possible to run a clock tree such that all nodes ... are equidistant
... and the clock tree takes an area no more than a constant times the area
of the original layout."  With unit-width wires (A3) a tree's area is its
total wire length; the bench sweeps mesh sizes and reports the ratio of
H-tree wiring to layout area — bounded by a small constant (~2 for the
standard H-tree), as is the tuning overhead of making a kd tree equidistant.
"""

from repro.arrays.topologies import mesh
from repro.clocktree.builders import kdtree_clock
from repro.clocktree.htree import htree_for_array
from repro.clocktree.tuning import tune_to_equidistant

from conftest import emit_table

SIZES = [4, 8, 16, 32]


def run_sweep():
    rows = []
    for n in SIZES:
        array = mesh(n, n)
        layout_area = array.layout.area
        htree = htree_for_array(array)
        kd = kdtree_clock(array)
        kd_tuned, kd_added = tune_to_equidistant(kd, array.comm.nodes())
        rows.append(
            (
                n,
                layout_area,
                htree.total_wire_length(),
                htree.total_wire_length() / layout_area,
                kd_tuned.total_wire_length() / layout_area,
            )
        )
    return rows


def test_lemma1_area_constant_factor(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "lemma1_area",
        "L1: equidistant clock tree area over layout area on n x n meshes "
        "(H-tree and tuned kd tree) — bounded by a constant",
        ["n", "layout area", "htree wire", "htree ratio", "tuned-kd ratio"],
        rows,
    )
    ratios = [r[3] for r in rows]
    assert all(ratio <= 3.0 for ratio in ratios)
    # The ratio stabilizes rather than growing with n.
    assert ratios[-1] <= ratios[0] * 1.5
    assert all(r[4] <= 6.0 for r in rows)
