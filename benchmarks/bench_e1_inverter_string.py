"""Exp E1 — the 2048-inverter-string chip (Section VII).

Paper measurements: equipotential single-phase cycle ~= 34 us, pipelined
cycle ~= 500 ns, a 68x speedup, identical on five chips (design bias
dominated stage noise).  The bench regenerates the five-chip table and the
length sweep backing the "any length could be clocked 68 times faster"
extrapolation.
"""

from repro.sim.inverter import (
    PAPER_EQUIPOTENTIAL_CYCLE,
    PAPER_PIPELINED_CYCLE,
    PAPER_SPEEDUP,
    PAPER_STRING_LENGTH,
    InverterString,
    paper_calibrated_model,
)

from conftest import emit_table


def run_chips():
    rows = []
    for seed in range(5):
        chip = InverterString(PAPER_STRING_LENGTH, paper_calibrated_model(seed))
        r = chip.result()
        rows.append(
            (
                seed,
                r.equipotential_cycle * 1e6,
                r.pipelined_cycle * 1e9,
                r.speedup,
            )
        )
    return rows


def run_length_sweep():
    rows = []
    for n in (256, 1024, 2048, 8192, 32768):
        chip = InverterString(n, paper_calibrated_model(seed=0))
        r = chip.result()
        rows.append((n, r.equipotential_cycle * 1e6, r.pipelined_cycle * 1e9, r.speedup))
    return rows


def emit_chips_table(rows, benchmark=None):
    return emit_table(
        "e1_inverter_chips",
        "E1: five simulated 2048-inverter chips "
        f"(paper: {PAPER_EQUIPOTENTIAL_CYCLE*1e6:.0f} us equipotential, "
        f"{PAPER_PIPELINED_CYCLE*1e9:.0f} ns pipelined, {PAPER_SPEEDUP:.0f}x)",
        ["chip", "equipotential (us)", "pipelined (ns)", "speedup"],
        rows,
        benchmark=benchmark,
    )


def test_e1_five_chips(benchmark):
    rows = benchmark.pedantic(run_chips, rounds=1, iterations=1)
    emit_chips_table(rows, benchmark=benchmark)
    for _chip, eq_us, pipe_ns, speedup in rows:
        assert abs(eq_us - 34.0) < 1.0
        assert abs(pipe_ns - 500.0) < 25.0
        assert abs(speedup - 68.0) < 2.0
    # Five-chip consistency: bias dominates noise.
    speedups = [r[3] for r in rows]
    assert max(speedups) - min(speedups) < 1.0


def test_e1_speedup_scale_invariant(benchmark):
    rows = benchmark.pedantic(run_length_sweep, rounds=1, iterations=1)
    emit_table(
        "e1_length_sweep",
        "E1: length sweep — once accumulated bias dominates the per-stage "
        "delay (n >= ~2048) the speedup is scale-invariant ('a similar "
        "inverter string of any length...')",
        ["n", "equipotential (us)", "pipelined (ns)", "speedup"],
        rows,
        benchmark=benchmark,
    )
    speedups = [r[3] for r in rows if r[0] >= 2048]
    assert max(speedups) / min(speedups) < 1.05
    # below the bias-dominated regime the speedup is smaller, never larger
    assert all(r[3] <= max(speedups) * 1.05 for r in rows)
