"""Exp E3 — self-timing buys little in regular arrays (Section I).

Two series:

1. the probability a wave hits a worst-case cell on a k-path: measured vs
   the closed form ``1 - p^k`` — approaching 1 as k grows;
2. measured cycle time of a blocking (one-place-channel) self-timed line vs
   the ideal best case and the worst case — large arrays drift toward
   worst-case operation, while clocked operation would sit at worst case by
   design anyway (the paper's argument for clocking regular arrays).
"""

from repro.sim.selftimed import (
    simulate_selftimed_line,
    two_point_sampler,
    worst_case_path_probability,
)

from conftest import emit_table

NORMAL, WORST, P_WORST = 1.0, 2.0, 0.05
SIZES = [2, 8, 32, 128, 512]
WAVES = 300


def run_sweep():
    sampler = two_point_sampler(NORMAL, WORST, P_WORST)
    rows = []
    for k in SIZES:
        result = simulate_selftimed_line(
            k, WAVES, sampler, seed=11, worst_time=WORST, blocking=True
        )
        predicted = worst_case_path_probability(1 - P_WORST, k)
        rows.append(
            (
                k,
                predicted,
                result.worst_case_fraction,
                result.mean_cycle_time,
                result.slowdown_vs_best,
            )
        )
    return rows


def run_wavefront_sweep():
    from repro.sim.selftimed import simulate_selftimed_wavefront

    sampler = two_point_sampler(NORMAL, WORST, P_WORST)
    rows = []
    for n in (2, 4, 8, 16):
        result = simulate_selftimed_wavefront(
            n, n, WAVES, sampler, seed=11, worst_time=WORST
        )
        predicted = worst_case_path_probability(1 - P_WORST, 2 * n - 1)
        rows.append((n, 2 * n - 1, predicted, result.worst_case_fraction,
                     result.mean_cycle_time))
    return rows


def test_e3_selftimed_worst_case_dominance(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "e3_selftimed",
        f"E3: worst-case-path probability and self-timed cycle time "
        f"(p_worst={P_WORST}, normal={NORMAL}, worst={WORST}, blocking channels)",
        ["k cells", "1-p^k", "measured frac", "cycle", "slowdown vs best"],
        rows,
    )
    # 1 - p^k matches measurement and approaches 1.
    for _k, predicted, measured, _c, _s in rows:
        assert abs(predicted - measured) < 0.1
    assert rows[-1][1] > 0.99
    # Cycle time rises with array size: the self-timing advantage decays.
    cycles = [r[3] for r in rows]
    assert cycles[-1] > cycles[0]
    assert rows[-1][4] > 1.3  # >30% above best case at 512 cells


def test_e3_wavefront_2d(benchmark):
    rows = benchmark.pedantic(run_wavefront_sweep, rounds=1, iterations=1)
    emit_table(
        "e3_selftimed_2d",
        "E3 (2D): self-timed wavefront meshes — worst-case-path probability "
        "along the rows+cols-1 critical path",
        ["n (mesh)", "path cells", "1-p^k", "measured frac", "cycle"],
        rows,
    )
    for _n, _k, predicted, measured, _cycle in rows:
        assert abs(predicted - measured) < 0.12
    assert rows[-1][3] > rows[0][3]
