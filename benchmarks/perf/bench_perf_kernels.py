"""Perf-regression suite for the batched/parallel hot kernels.

Runs :func:`repro.analysis.perf.run_perf_suite` across mesh sizes and
enforces the PR's acceptance bar:

* scalar and batched results agree to within 1e-9 (they are in fact
  bit-identical — same arithmetic on the same float64 values), and the
  compiled simulation kernels agree *exactly* (diff == 0.0: identical
  payloads, violation lists, and makespans);
* at >= 4096 cells the warm batched ``max_skew_bound`` and
  ``BufferedClockTree.max_skew`` beat the scalar path by >= 5x, and the
  compiled ``clocked_run`` / ``selftimed_makespan`` kernels beat their
  scalar oracles by >= 10x;
* ``max_skew_bound_cold`` (index build + pair translation included) is
  >= 1x at every benchmarked size — cold-start must never lose to the
  scalar path, and the vectorized ``lca_cold_build`` never loses to the
  Euler-tour construction;
* the ECO rows (``eco_repad``/``eco_resize``) and ``tile_stitch`` agree
  *exactly* with their from-scratch oracles (diff == 0.0 means every
  slack array is bit-identical), and a single-edge repad at >= 4096
  cells re-analyzes >= 10x faster than the full ``analyze_slack``;
* the ``CompiledTrialContext`` Monte-Carlo cache is >= 3x over the
  rebuild-per-trial formulation, with bit-identical summaries;
* the shared-memory Monte-Carlo pool returns bit-identical summaries
  and never loses to the serial rebuild-per-trial loop (>= 1x even on a
  one-core runner — the win is algorithmic, not core-count);
* the chunked tick-matrix scale rows (``REPRO_PERF_SCALE_SIDES``) agree
  exactly with the monolithic evaluation and, where it runs, the
  per-event scalar oracle;
* the static flow rows (``mcm_howard``/``buffer_sizing``) agree
  *exactly* with their dynamic oracles (dyadic services make the
  max-plus MCM a bit-equality against the simulated long-run rate), and
  at >= 4096 cells the Howard solve beats simulate-to-convergence by
  >= 10x.

The suite writes the repo-root ``BENCH_perf.json`` perf-trajectory
artifact (schema-validated before writing) exactly like
``python -m repro bench`` does.

Environment knobs for CI / quick local runs:

* ``REPRO_PERF_SIDES`` — comma-separated mesh sides
  (default ``16,32,64``; the >= 5x assertions only apply to sides with
  >= 4096 cells, so a small-sides run still checks equivalence);
* ``REPRO_PERF_SCALE_SIDES`` — comma-separated grid sides for the
  large-scale timing rows (default: none; ``256`` is the 65,536-cell CI
  smoke row, ``256,1024`` adds the million-cell row);
* ``REPRO_PERF_OUT`` — artifact path (default: repo-root
  ``BENCH_perf.json``; empty string skips writing).
"""

import os
import time

from repro.analysis.perf import run_perf_suite, speedup_by_kernel, write_bench_results
from repro.obs.schema import validate_benchmark_result

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

# Warm kernels the >= 5x acceptance bar applies to at >= 4096 cells.
ACCEPTANCE_KERNELS = ("max_skew_bound", "buffered_max_skew")
ACCEPTANCE_CELLS = 4096
ACCEPTANCE_SPEEDUP = 5.0
# Compiled simulation kernels: >= 10x at >= 4096 cells, exact agreement.
SIM_KERNELS = ("clocked_run", "selftimed_makespan", "selftimed_backpressure")
SIM_SPEEDUP = 10.0
# Monte-Carlo structure cache: >= 3x over rebuild-per-trial.
MC_CACHED_SPEEDUP = 3.0
# Shared-memory Monte-Carlo pool: must never lose to the serial loop.
MC_POOL_FLOOR = 1.0
# Scale rows stream violations per block and must stay exact.
SCALE_KERNELS = ("mesh_csr_build", "clocked_timing_blocked", "clocked_timing")
# Incremental ECO + tiled-composition rows: bit-exact, and a single-edge
# repad at the acceptance scale must be >= 10x over full re-analysis.
ECO_KERNELS = ("eco_repad", "eco_resize", "tile_stitch")
ECO_REPAD_SPEEDUP = 10.0
# Static flow analysis: the max-plus MCM must equal the simulator's
# long-run cycle time bit-for-bit (dyadic services), and at >= 4096
# cells the Howard solve must beat simulate-to-convergence by >= 10x.
FLOW_KERNELS = ("mcm_howard", "buffer_sizing")
FLOW_MCM_SPEEDUP = 10.0
EQUIVALENCE_TOL = 1e-9


def _sides():
    raw = os.environ.get("REPRO_PERF_SIDES", "16,32,64")
    return [int(s) for s in raw.split(",") if s.strip()]


def _scale_sides():
    raw = os.environ.get("REPRO_PERF_SCALE_SIDES", "")
    return [int(s) for s in raw.split(",") if s.strip()]


def test_perf_suite_speedup_and_equivalence():
    sides = _sides()
    scale_sides = _scale_sides()
    t0 = time.perf_counter()
    results = run_perf_suite(
        sides=sides, trials=16, workers=4, repeats=3, scale_sides=scale_sides
    )
    wall_s = time.perf_counter() - t0

    for r in results:
        assert r.max_abs_diff <= EQUIVALENCE_TOL, (
            f"{r.kernel} at size {r.size}: batch/scalar disagree by {r.max_abs_diff}"
        )
        if r.kernel in SIM_KERNELS:
            assert r.max_abs_diff == 0.0, (
                f"{r.kernel} at size {r.size}: compiled kernel not exact "
                f"(diff {r.max_abs_diff})"
            )
        if r.kernel == "max_skew_bound_cold":
            assert r.speedup >= 1.0, (
                f"max_skew_bound_cold at {r.size} cells: {r.speedup:.2f}x — "
                f"cold-start lost to the scalar path"
            )
        if r.kernel == "montecarlo_cached":
            assert r.speedup >= MC_CACHED_SPEEDUP, (
                f"montecarlo_cached: {r.speedup:.1f}x < {MC_CACHED_SPEEDUP}x"
            )
        if r.kernel.startswith("montecarlo_workers_"):
            assert r.max_abs_diff == 0.0, (
                f"{r.kernel}: shared-memory pool summary not bit-identical "
                f"(diff {r.max_abs_diff})"
            )
            assert r.speedup >= MC_POOL_FLOOR, (
                f"{r.kernel}: {r.speedup:.2f}x — the zero-pickle pool lost "
                f"to the serial rebuild-per-trial loop"
            )
        if r.kernel in SCALE_KERNELS:
            assert r.max_abs_diff == 0.0, (
                f"{r.kernel} at {r.size} cells: streamed path not exact "
                f"(diff {r.max_abs_diff})"
            )
        if r.kernel in ECO_KERNELS:
            assert r.max_abs_diff == 0.0, (
                f"{r.kernel} at {r.size} cells: incremental path not "
                f"bit-identical to the full oracle (diff {r.max_abs_diff})"
            )
        if r.kernel in FLOW_KERNELS:
            assert r.max_abs_diff == 0.0, (
                f"{r.kernel} at {r.size} cells: static flow analysis not "
                f"bit-identical to the dynamic oracle (diff {r.max_abs_diff})"
            )
        if r.kernel == "lca_cold_build":
            assert r.speedup >= 1.0, (
                f"lca_cold_build at {r.size} cells: {r.speedup:.2f}x — "
                f"vectorized build lost to the Euler-tour construction"
            )

    checked = 0
    sim_checked = 0
    mcm_checked = 0
    for r in results:
        if r.kernel in ACCEPTANCE_KERNELS and r.size >= ACCEPTANCE_CELLS:
            assert r.speedup >= ACCEPTANCE_SPEEDUP, (
                f"{r.kernel} at {r.size} cells: {r.speedup:.1f}x < "
                f"{ACCEPTANCE_SPEEDUP}x acceptance bar"
            )
            checked += 1
        if r.kernel in SIM_KERNELS and r.size >= ACCEPTANCE_CELLS:
            assert r.speedup >= SIM_SPEEDUP, (
                f"{r.kernel} at {r.size} cells: {r.speedup:.1f}x < "
                f"{SIM_SPEEDUP}x acceptance bar"
            )
            sim_checked += 1
        if r.kernel == "eco_repad" and r.size >= ACCEPTANCE_CELLS:
            assert r.speedup >= ECO_REPAD_SPEEDUP, (
                f"eco_repad at {r.size} cells: {r.speedup:.1f}x < "
                f"{ECO_REPAD_SPEEDUP}x acceptance bar"
            )
        if r.kernel == "mcm_howard" and r.size >= ACCEPTANCE_CELLS:
            assert r.speedup >= FLOW_MCM_SPEEDUP, (
                f"mcm_howard at {r.size} cells: {r.speedup:.1f}x < "
                f"{FLOW_MCM_SPEEDUP}x acceptance bar"
            )
            mcm_checked += 1
    if any(side * side >= ACCEPTANCE_CELLS for side in sides):
        assert checked >= len(ACCEPTANCE_KERNELS)
        assert sim_checked >= len(SIM_KERNELS)
        assert mcm_checked >= 1

    out = os.environ.get("REPRO_PERF_OUT", DEFAULT_OUT)
    if out:
        payload = write_bench_results(results, out, wall_s=wall_s)
        assert validate_benchmark_result(payload) == []
        assert set(ACCEPTANCE_KERNELS) <= set(speedup_by_kernel(payload))
