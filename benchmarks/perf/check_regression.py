"""Compare a fresh BENCH_perf.json against the stored baseline ratios.

Usage::

    python benchmarks/perf/check_regression.py FRESH.json [BASELINE.json]

For every kernel present in both files, the fresh worst-case speedup
must not fall below ``baseline_speedup / SLOWDOWN_FACTOR`` (5x): a
machine can be slower overall, but the *ratio* of batch to scalar is
machine-insensitive, so losing more than 5x of it means the batch
kernel itself regressed.  Exits non-zero (for CI) with a per-kernel
report on failure.
"""

import json
import sys

SLOWDOWN_FACTOR = 5.0

# Kernels whose batch-vs-scalar ratio the gate enforces — the warm skew
# kernels, the cold path (now required to beat scalar), and the compiled
# simulation kernels.  Monte-Carlo pool rows are gated by the absolute
# floors below instead of a baseline ratio (the cache row has its own
# absolute >= 3x gate in bench_perf_kernels.py).
GATED_KERNELS = (
    "max_skew_bound",
    "max_skew_lower_bound",
    "buffered_max_skew",
    "max_skew_bound_cold",
    "clocked_run",
    "selftimed_makespan",
    "selftimed_backpressure",
    "lca_cold_build",
    "eco_resize",
    "tile_stitch",
    "mcm_howard",
    "buffer_sizing",
)

# Absolute speedup floors, independent of any baseline: the shared-memory
# Monte-Carlo pool must never *lose* to the serial rebuild-per-trial loop
# again (the regression this gate exists for), even on a one-core runner
# where the win is purely algorithmic.  Matched by kernel-name prefix so
# any worker count is covered.
ABSOLUTE_FLOOR_PREFIXES = {
    "montecarlo_workers_": 1.0,
    # The ECO acceptance bar: a single-edge repad must re-analyze at
    # least 10x faster than a from-scratch analyze_slack at every
    # benchmarked size (it is hundreds of x at the 4096-cell gate).
    "eco_repad": 10.0,
}

# Kernels whose max_abs_diff column must be exactly 0.0: the incremental
# ECO engine and the tiled-composition stitch are only admissible while
# bit-identical to their from-scratch oracles, and the static flow
# analyzer (max-plus MCM, buffer sizing) must land on the very float the
# simulate-to-convergence / Karp-oracle baseline measures — dyadic
# delays make the agreement exact, so any non-zero diff is a bug.
EXACT_PREFIXES = ("eco_", "tile_", "mcm_", "buffer_sizing")


def speedups(path):
    with open(path) as fh:
        payload = json.load(fh)
    headers = payload["headers"]
    k, sp = headers.index("kernel"), headers.index("speedup")
    out = {}
    for row in payload["rows"]:
        kernel, speedup = row[k], float(row[sp])
        out[kernel] = min(out.get(kernel, float("inf")), speedup)
    return out


def worst_diffs(path):
    """``{kernel: largest max_abs_diff over its rows}``."""
    with open(path) as fh:
        payload = json.load(fh)
    headers = payload["headers"]
    k, d = headers.index("kernel"), headers.index("max_abs_diff")
    out = {}
    for row in payload["rows"]:
        kernel, diff = row[k], float(row[d])
        out[kernel] = max(out.get(kernel, 0.0), diff)
    return out


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh = speedups(argv[1])
    baseline_path = argv[2] if len(argv) > 2 else "benchmarks/perf/baseline.json"
    with open(baseline_path) as fh:
        baseline = json.load(fh)["speedups"]

    failures = []
    for kernel in GATED_KERNELS:
        if kernel not in fresh or kernel not in baseline:
            continue
        floor = baseline[kernel] / SLOWDOWN_FACTOR
        status = "ok" if fresh[kernel] >= floor else "REGRESSION"
        print(
            f"{kernel}: fresh {fresh[kernel]:.1f}x, baseline {baseline[kernel]:.1f}x, "
            f"floor {floor:.1f}x -> {status}"
        )
        if fresh[kernel] < floor:
            failures.append(kernel)
    for kernel, speedup in sorted(fresh.items()):
        for prefix, floor in ABSOLUTE_FLOOR_PREFIXES.items():
            if not kernel.startswith(prefix):
                continue
            status = "ok" if speedup >= floor else "REGRESSION"
            print(
                f"{kernel}: fresh {speedup:.1f}x, absolute floor {floor:.1f}x "
                f"-> {status}"
            )
            if speedup < floor:
                failures.append(kernel)
    for kernel, diff in sorted(worst_diffs(argv[1]).items()):
        if not kernel.startswith(EXACT_PREFIXES):
            continue
        status = "ok" if diff == 0.0 else "REGRESSION"
        print(f"{kernel}: max_abs_diff {diff} (required 0.0) -> {status}")
        if diff != 0.0:
            failures.append(kernel)
    if failures:
        print(f"perf regression in: {', '.join(failures)}")
        return 1
    print("perf-smoke: batch kernels within 5x of baseline ratios")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
