"""Exp MV — statistical validation of the skew models (Section III).

Monte-Carlo over many independently sampled buffered spines: the measured
worst neighbor skew must never exceed the summation bound ``(m + eps) * s``
(plus the buffers' own contribution), at every variation magnitude, while
the mean tracks well below it — the bounds are worst-case, not typical-case,
exactly as the paper frames them.
"""

from repro.analysis.montecarlo import run_trials
from repro.arrays.topologies import linear_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation

from conftest import emit_table

N = 128
M = 1.0
TRIALS = 60
EPS_VALUES = [0.05, 0.1, 0.2, 0.4]


def run_sweep():
    array = linear_array(N)
    tree = spine_clock(array)
    pairs = array.communicating_pairs()
    rows = []
    for eps in EPS_VALUES:

        def trial(seed, eps=eps):
            buffered = BufferedClockTree(
                tree,
                buffer_spacing=1e9,  # isolate wire variation (one segment/edge)
                wire_variation=BoundedUniformVariation(m=M, epsilon=eps, seed=seed),
                buffer_model=InverterPairModel(nominal=1e-12),
            )
            return buffered.max_skew(pairs)

        summary = run_trials(trial, TRIALS, base_seed=1000)
        bound = (M + eps) * 1.0  # s = 1 between spine neighbors
        rows.append(
            (eps, summary.mean, summary.ci_half_width, summary.maximum, bound)
        )
    return rows


def test_model_validation_monte_carlo(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "model_validation",
        f"MV: worst neighbor skew across {TRIALS} sampled chips per eps "
        f"({N}-cell spine, s = 1): measured max never exceeds (m+eps)*s",
        ["eps", "mean max-skew", "ci95", "worst max-skew", "(m+eps)*s bound"],
        rows,
    )
    for eps, mean, _ci, worst, bound in rows:
        assert worst <= bound + 1e-9
        assert mean <= worst
        # The worst-case bound is approached but typically not met exactly.
        assert mean >= 0.1 * eps  # variation does show up
    # Skew magnitude scales with eps.
    assert rows[-1][1] > rows[0][1]
