"""Ablation — buffer spacing in pipelined clock trees (A7's "constant
distance apart").

The paper suggests spacing buffers so wire delay between buffers matches a
buffer's own delay.  Sweep the spacing: too dense wastes buffers (tau is
dominated by buffer count... per-segment tau includes a buffer each), too
sparse lets per-segment wire delay grow.  tau is minimized near
wire-delay ~ buffer-delay; the skew between neighbors also tracks spacing.
"""

from repro.arrays.topologies import linear_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation

from conftest import emit_table

N = 64
CELL_SPACING = 16.0  # long inter-cell clock wires make spacing meaningful
BUFFER_DELAY = 1.0  # nominal buffer delay, independent of spacing here
SPACINGS = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]


def run_sweep():
    array = linear_array(N, spacing=CELL_SPACING)
    tree = spine_clock(array)
    pairs = array.communicating_pairs()
    rows = []
    for spacing in SPACINGS:
        buffered = BufferedClockTree(
            tree,
            buffer_spacing=spacing,
            wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.1, seed=3),
            buffer_model=InverterPairModel(nominal=BUFFER_DELAY, seed=3),
        )
        rows.append(
            (
                spacing,
                buffered.buffer_count,
                buffered.tau(),
                buffered.max_skew(pairs),
                buffered.latency(),
            )
        )
    return rows


def test_ablation_buffer_spacing(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_buffer_spacing",
        f"Ablation: buffer spacing on a {N}-cell spine "
        f"(buffer delay {BUFFER_DELAY}; tau = spacing*wire + buffer)",
        ["spacing", "buffers", "tau", "neighbor skew", "latency"],
        rows,
    )
    taus = {r[0]: r[2] for r in rows}
    # tau grows with spacing once wire delay dominates the buffer delay.
    assert taus[16.0] > taus[2.0] > 0
    # Dense buffering costs hardware without helping tau below ~buffer delay.
    counts = {r[0]: r[1] for r in rows}
    assert counts[0.5] > 3 * counts[2.0]
    assert taus[0.5] >= BUFFER_DELAY  # floor set by the buffer itself
    # Latency falls with spacing (fewer buffer delays on the path).
    latencies = {r[0]: r[4] for r in rows}
    assert latencies[8.0] < latencies[0.5]
