"""Ablation — how the variation ratio eps/m picks the model and the winner.

The Section III derivation gives sigma = m*d + eps*s.  With eps -> 0 the
difference model applies and equidistant (H-tree/dissection) schemes win;
as eps/m grows, the s-term dominates and path-local (spine) schemes win.
This bench locates the crossover on a 1D array: the dissection tree beats
the spine below some eps*, loses above it — and eps* shrinks as the array
grows, which is why the paper trusts only the summation model at scale.
"""

from repro.arrays.topologies import linear_array
from repro.clocktree.htree import dissection_tree_for_linear
from repro.clocktree.spine import spine_clock
from repro.core.models import PhysicalModel, max_skew_bound

from conftest import emit_table

SIZES = [16, 64, 256]
EPS_VALUES = [0.0, 0.001, 0.01, 0.1, 0.3]
M = 1.0


def run_sweep():
    rows = []
    for n in SIZES:
        array = linear_array(n)
        pairs = array.communicating_pairs()
        dissection = dissection_tree_for_linear(array)
        spine = spine_clock(array)
        for eps in EPS_VALUES:
            model = PhysicalModel(m=M, eps=eps)
            sd = max_skew_bound(dissection, pairs, model)
            ss = max_skew_bound(spine, pairs, model)
            rows.append((n, eps, sd, ss, "dissection" if sd < ss else "spine"))
    return rows


def test_ablation_eps_over_m_crossover(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_eps_over_m",
        "Ablation: sigma = m*d + eps*s for dissection vs spine clocks on "
        "linear arrays — the winner flips as eps/m grows, earlier for "
        "larger arrays",
        ["n", "eps/m", "sigma dissection", "sigma spine", "winner"],
        rows,
    )
    by = {(r[0], r[1]): r[4] for r in rows}
    # eps = 0: equidistant dissection wins everywhere (sigma = 0).
    assert all(by[(n, 0.0)] == "dissection" for n in SIZES)
    # large eps: the spine wins everywhere.
    assert all(by[(n, 0.3)] == "spine" for n in SIZES)
    # the crossover eps shrinks with array size: at eps=0.01 the large
    # array has flipped while the small one may not have.
    assert by[(256, 0.01)] == "spine"
