"""Exp F1/F2 — the two skew models (Figs. 1 and 2, Section III).

Regenerates the models' behaviour on concrete trees: for node pairs of a
random buffered clock tree, the measured skew (with per-unit delay sampled
in ``[m - eps, m + eps]``) must sit inside the Section III bracket
``eps*s <= skew`` is not guaranteed pointwise (it bounds the worst case),
but ``skew <= m*d + eps*s <= (m+eps)*s`` is — and the bench shows the
difference model alone (``m*d``) fails exactly where the summation terms
matter, which is the paper's reason for introducing the second model.
"""

import random

from repro.arrays.topologies import mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.builders import kdtree_clock
from repro.core.models import DifferenceModel, PhysicalModel, SummationModel
from repro.delay.buffer import InverterPairModel
from repro.delay.variation import BoundedUniformVariation

from conftest import emit_table

M, EPS = 1.0, 0.15


def run_models_experiment():
    array = mesh(8, 8)
    tree = kdtree_clock(array)
    buffered = BufferedClockTree(
        tree,
        buffer_spacing=1e9,  # one segment per edge: isolate wire variation
        wire_variation=BoundedUniformVariation(m=M, epsilon=EPS, seed=7),
        buffer_model=InverterPairModel(nominal=1e-12),
    )
    phys = PhysicalModel(m=M, eps=EPS)
    summ = SummationModel(m=M, eps=EPS)
    diff = DifferenceModel(m=M)

    rng = random.Random(0)
    cells = array.comm.nodes()
    rows = []
    violations_physical = 0
    violations_summation = 0
    diff_model_insufficient = 0
    samples = 200
    for _ in range(samples):
        a, b = rng.sample(cells, 2)
        measured = buffered.skew(a, b)
        d = tree.path_difference(a, b)
        s = tree.path_length(a, b)
        bound_phys = phys.skew_bound(tree, a, b)
        bound_sum = summ.skew_bound(tree, a, b)
        bound_diff = diff.skew_bound(tree, a, b)
        if measured > bound_phys + 1e-9:
            violations_physical += 1
        if measured > bound_sum + 1e-9:
            violations_summation += 1
        if measured > bound_diff + 1e-9:
            diff_model_insufficient += 1
        if len(rows) < 8:
            rows.append((round(d, 2), round(s, 2), measured, bound_diff, bound_phys, bound_sum))
    return rows, violations_physical, violations_summation, diff_model_insufficient, samples


def test_fig1_2_skew_model_bracket(benchmark):
    rows, v_phys, v_sum, diff_insufficient, samples = benchmark(run_models_experiment)
    emit_table(
        "fig1_2_skew_models",
        "F1/F2: measured skew vs difference/physical/summation bounds "
        f"(8x8 mesh, kd clock, m={M}, eps={EPS}; {samples} random pairs)",
        ["d", "s", "measured", "f(d)=m*d", "m*d+eps*s", "(m+eps)*s"],
        rows,
    )
    # The Section III bracket holds everywhere; the pure difference model
    # alone is violated on same-length-path pairs with variation.
    assert v_phys == 0
    assert v_sum == 0
    assert diff_insufficient > 0
