"""Exp S8 — tree machines (Section VIII).

H-tree-laid binary trees, clocked along their data paths, with pipeline
registers on long edges: constant pipeline interval (one query per tick),
O(sqrt(N)) root-to-leaf latency, O(N) area including registers.
"""

from repro.arrays.topologies import complete_binary_tree
from repro.clocktree.builders import comm_tree_clock
from repro.core.models import SummationModel, max_skew_bound
from repro.treemachine.layout import htree_tree_layout, level_edge_lengths
from repro.treemachine.machine import SearchTreeMachine
from repro.treemachine.pipeline import pipeline_tree

from conftest import emit_table

DEPTHS = [2, 4, 6, 8, 10]
SEGMENT = 1.0


def run_sweep():
    rows = []
    for depth in DEPTHS:
        array = htree_tree_layout(depth)
        pt = pipeline_tree(array, depth, segment_limit=SEGMENT)
        n = 2 ** (depth + 1) - 1
        rows.append(
            (
                depth,
                n,
                array.layout.area,
                pt.total_registers,
                pt.max_segment_length,
                pt.root_to_leaf_latency(),
            )
        )
    return rows


def test_s8_pipelined_tree_metrics(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "s8_tree_machine",
        f"S8: H-tree tree machines with pipeline registers (segment <= {SEGMENT}): "
        "area O(N), segments bounded, latency O(sqrt(N)), interval 1 tick",
        ["depth", "N nodes", "area", "registers", "max segment", "latency (ticks)"],
        rows,
    )
    # Area linear in N (including registers, which only thicken wires).
    for _d, n, area, regs, seg, _lat in rows:
        assert area <= 3.0 * n
        assert regs <= 2.5 * n
        assert seg <= SEGMENT + 1e-9
    # Latency ~ sqrt(N): +2 depth (4x nodes) -> ~2x latency.
    lat = {row[0]: row[5] for row in rows}
    assert 1.4 <= lat[8] / lat[6] <= 2.6
    assert 1.4 <= lat[10] / lat[8] <= 2.6


def test_s8_search_machine_throughput(benchmark):
    def run():
        depth = 5
        machine = SearchTreeMachine(
            depth, pipelined=pipeline_tree(htree_tree_layout(depth), depth, SEGMENT)
        )
        commands = [("ins", k) for k in range(0, 40, 3)] + [
            ("q", k) for k in range(40)
        ]
        return machine.run(commands)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "s8_search_machine",
        "S8 (live): pipelined search tree machine, one query per tick",
        ["queries", "answers", "latency ticks", "interval ticks"],
        [(40, result.answers, result.latency_ticks, result.interval_ticks)],
    )
    assert result.interval_ticks == 1
    expected = [k % 3 == 0 for k in range(40)]
    assert result.results == expected


def test_s8_summation_skew_rides_data_paths(benchmark):
    def run():
        rows = []
        for depth in (3, 5, 7):
            array = htree_tree_layout(depth)
            tree = comm_tree_clock(array)
            sigma = max_skew_bound(
                tree, array.communicating_pairs(), SummationModel(m=1.0, eps=0.1)
            )
            longest_edge = max(level_edge_lengths(array, depth).values())
            rows.append((depth, sigma, 1.1 * longest_edge))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "s8_comm_clock",
        "S8: clocking along the data paths — sigma tracks the longest "
        "communication edge (skew and data delay grow together)",
        ["depth", "sigma", "(m+eps) * longest edge"],
        rows,
    )
    for _d, sigma, bound in rows:
        assert sigma <= bound + 1e-9
