"""Ablation — delay tuning: the cure that works in exactly one world.

Section VII: "For the difference model to apply and for H-tree or other
equidistant clocking schemes to be useful, it must be possible to closely
control the 'length' ... of the clock tree."  This bench tunes arbitrary
trees to equidistance and measures both models before/after:

* difference-model sigma collapses to 0 for every scheme (tuning is a
  complete cure there);
* summation-model sigma never improves (tuning adds wire, and skew
  accumulates along the s-path regardless);
* the added tuning wire itself is reported — the area price of the
  discrete-component practice the paper references.
"""

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.builders import kdtree_clock, serpentine_clock
from repro.clocktree.tuning import tune_to_equidistant
from repro.core.models import DifferenceModel, SummationModel, max_skew_bound

from conftest import emit_table

DIFF = DifferenceModel(m=1.0)
SUMM = SummationModel(m=1.0, eps=0.1)


def run_sweep():
    rows = []
    # Note: kd trees over power-of-two grids are already equidistant by
    # symmetry, so the cases use odd shapes and the serpentine (the
    # deliberately untuned scheme).
    cases = [
        ("mesh-7x9 kd", mesh(7, 9), kdtree_clock),
        ("mesh-8 serp", mesh(8, 8), serpentine_clock),
        ("mesh-16 serp", mesh(16, 16), serpentine_clock),
        ("linear-50 kd", linear_array(50), kdtree_clock),
    ]
    for label, array, builder in cases:
        tree = builder(array)
        pairs = array.communicating_pairs()
        tuned, added = tune_to_equidistant(tree, array.comm.nodes())
        rows.append(
            (
                label,
                max_skew_bound(tree, pairs, DIFF),
                max_skew_bound(tuned, pairs, DIFF),
                max_skew_bound(tree, pairs, SUMM),
                max_skew_bound(tuned, pairs, SUMM),
                added,
            )
        )
    return rows


def test_ablation_tuning(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_tuning",
        "Ablation: delay-tuning to equidistance — difference-model sigma "
        "collapses, summation-model sigma does not improve",
        ["case", "d-sigma before", "d-sigma tuned", "s-sigma before",
         "s-sigma tuned", "wire added"],
        rows,
    )
    for _label, d_before, d_after, s_before, s_after, added in rows:
        assert d_after == 0.0
        assert s_after >= s_before - 1e-9
        assert added >= 0.0
    # The untuned schemes genuinely needed tuning (kd trees over symmetric
    # grids can come out equidistant for free).
    assert sum(1 for r in rows if r[1] > 0) >= 2
    assert sum(1 for r in rows if r[5] > 0) >= 2
