"""Exp F3 — H-tree clocking under the difference model (Fig. 3, Lemma 1,
Theorem 2).

Regenerates, for linear / square / hexagonal arrays: the skew bound
``sigma = f(d)`` (zero, by equidistance), the A5 period, and the clock-tree
area factor — all constant in array size, while the tree's root-to-leaf
path ``P`` grows.  "Who wins": period flat at ``delta + tau`` for every
topology and size.
"""

import pytest

from repro.core.theorems import theorem2_sweep

from conftest import emit_table

SIZES = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("topology", ["linear", "mesh", "hex"])
def test_fig3_htree_constant_period(benchmark, topology):
    records = benchmark.pedantic(
        theorem2_sweep, args=(SIZES,), kwargs={"topology": topology},
        rounds=1, iterations=1,
    )
    rows = [
        (r.size, r.n_cells, r.sigma, r.extra["P"], r.period) for r in records
    ]
    emit_table(
        f"fig3_htree_{topology}",
        f"F3: H-tree + difference model on {topology} arrays "
        "(sigma=f(d)=0 by equidistance; period = delta + tau, flat)",
        ["n", "cells", "sigma", "P (root-leaf)", "period"],
        rows,
    )
    periods = [r.period for r in records]
    assert max(periods) == min(periods)
    assert all(r.sigma == 0.0 for r in records)
    # P grows with the layout even though the period does not.
    assert records[-1].extra["P"] > records[0].extra["P"]
