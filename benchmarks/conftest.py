"""Benchmark harness helpers.

Every bench regenerates one of the paper's figures/claims as a table of
rows.  ``emit_table`` renders the table, prints it (visible with ``-s``),
and writes two artifacts under ``benchmarks/results/``:

* ``<name>.txt`` — the human-readable table (unchanged format);
* ``<name>.json`` — the same rows machine-readable, plus timing metadata
  (emission timestamp, repro version, and — when the pytest-benchmark
  fixture is passed in — the measured round statistics).  These files are
  the repo's perf trajectory; their shape is pinned by
  ``repro.obs.schema.BENCHMARK_RESULT_SCHEMA`` and checked by the
  ``obs``-marked schema tests.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, List, Mapping, Optional, Sequence

from repro import __version__
from repro.tables import format_value_sci, render_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _benchmark_timing(benchmark) -> Optional[dict]:
    """Best-effort extraction of pytest-benchmark round stats; the JSON
    stays valid (timing simply absent) if the plugin's internals move."""
    if benchmark is None:
        return None
    try:
        stats = benchmark.stats.stats
        return {
            "rounds": stats.rounds,
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
        }
    except AttributeError:
        return None


def emit_table(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    timing: Optional[Mapping] = None,
    benchmark=None,
) -> str:
    raw_rows: List[List] = [list(row) for row in rows]
    text = render_table(headers, raw_rows, title=title, fmt=format_value_sci) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)

    meta: dict = {"emitted_at": time.time(), "repro_version": __version__}
    measured = _benchmark_timing(benchmark)
    if measured is not None:
        meta["timing"] = measured
    if timing is not None:
        meta.setdefault("timing", {}).update(timing)
    payload = {
        "name": name,
        "title": title,
        "headers": list(headers),
        "rows": [[_json_cell(v) for v in row] for row in raw_rows],
        "meta": meta,
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print("\n" + text)
    return text


def _json_cell(value):
    """Rows must be JSON scalars; anything exotic degrades to ``str``."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)
