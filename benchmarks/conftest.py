"""Benchmark harness helpers.

Every bench regenerates one of the paper's figures/claims as a table of
rows.  ``emit_table`` renders the table, prints it (visible with ``-s``),
and writes it to ``benchmarks/results/<name>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` run leaves artifacts behind.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines: List[str] = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)
    print("\n" + text)
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
