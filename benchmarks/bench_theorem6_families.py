"""Exp T6 — Theorem 6: sigma = Omega(W(N)) across graph families.

Low-bisection-width families (linear arrays, trees) admit constant or
slowly-growing best-scheme skew; the mesh family's width Theta(n) forces
skew to grow in lockstep with it.  The bench prints measured best sigma
next to the estimated bisection width and the theorem's floor.
"""

from repro.core.theorems import theorem6_sweep

from conftest import emit_table

SIZES = [4, 8, 12, 16]
BETA = 0.1


def test_theorem6_families(benchmark):
    records = benchmark.pedantic(
        theorem6_sweep, args=(SIZES,), kwargs={"beta": BETA}, rounds=1, iterations=1
    )
    rows = [
        (
            r.label.replace("t6-", ""),
            r.size,
            r.n_cells,
            r.extra["bisection_width"],
            r.sigma,
            r.extra["theorem6_floor"],
            r.extra["best_scheme"],
        )
        for r in records
    ]
    emit_table(
        "theorem6_families",
        f"T6: best-scheme sigma vs bisection width W (beta={BETA}); "
        "sigma >= beta*W/capacity everywhere, and flat families stay flat",
        ["family", "n", "cells", "W (est)", "sigma best", "floor", "scheme"],
        rows,
    )
    by_family = {}
    for r in records:
        by_family.setdefault(r.label, []).append(r)
    # Linear: flat sigma, flat W.
    linear = by_family["t6-linear"]
    assert max(x.sigma for x in linear) == min(x.sigma for x in linear)
    # Mesh: sigma and W both grow.
    mesh_records = by_family["t6-mesh"]
    assert mesh_records[-1].sigma > 1.5 * mesh_records[0].sigma
    assert mesh_records[-1].extra["bisection_width"] > mesh_records[0].extra["bisection_width"]
    # Floor respected everywhere.
    assert all(r.sigma >= r.extra["theorem6_floor"] - 1e-9 for r in records)
