"""Exp F5 — folding the array bounds host-to-end skew (Fig. 5).

Unfolded, the host talks to cell n-1 across a clock path spanning the whole
array; folded, both ends tap the trunk next to the host.  The bench sweeps
sizes and reports host-to-end summation skew for both layouts.
"""

from repro.arrays.topologies import linear_array
from repro.clocktree.spine import folded_linear_array, spine_clock
from repro.core.models import SummationModel

from conftest import emit_table

SIZES = [8, 32, 128, 512]
MODEL = SummationModel(m=1.0, eps=0.1)


def run_sweep():
    rows = []
    for n in SIZES:
        # Unfolded: host at cell 0's end, clock runs 0 -> n-1.
        array = linear_array(n)
        tree = spine_clock(array)
        unfolded_end_skew = MODEL.skew_bound(tree, 0, n - 1)
        # Folded: host taps station 0, both ends adjacent.
        farr, ftree = folded_linear_array(n)
        folded_host_to_end = max(
            MODEL.skew_bound(ftree, "host", 0),
            MODEL.skew_bound(ftree, "host", n - 1),
        )
        folded_max_pair = max(
            MODEL.skew_bound(ftree, a, b) for a, b in farr.communicating_pairs()
        )
        rows.append((n, unfolded_end_skew, folded_host_to_end, folded_max_pair))
    return rows


def test_fig5_folding_bounds_host_skew(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "fig5_folded",
        "F5: host-to-far-end summation skew, straight vs folded layout "
        "(folded stays constant; straight grows with n)",
        ["n", "straight host<->end", "folded host<->end", "folded max pair"],
        rows,
    )
    assert rows[-1][1] > 50 * rows[-1][2]
    assert max(r[3] for r in rows) <= 3.5
