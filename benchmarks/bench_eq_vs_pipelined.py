"""Exp EQ — equipotential (A6) vs pipelined (A7) distribution time.

The foundational comparison motivating the whole paper: the equipotential
tau grows with the layout diameter (linearly with a repeated-driver model,
quadratically for a raw RC line), while the buffered pipelined tau is a
constant.  The crossover sits at a few tens of cells.
"""

from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.htree import htree_for_array
from repro.clocktree.spine import spine_clock
from repro.core.parameters import equipotential_tau, pipelined_tau
from repro.delay.wire import ElmoreWireModel

from conftest import emit_table

LINEAR_SIZES = [4, 16, 64, 256, 1024]
MESH_SIZES = [4, 8, 16, 32]


def run_sweep():
    rows = []
    for n in LINEAR_SIZES:
        array = linear_array(n)
        tree = spine_clock(array)
        rows.append(
            (
                "linear",
                n,
                equipotential_tau(tree),  # alpha * P
                equipotential_tau(tree, wire_model=ElmoreWireModel(r=0.1, c=0.1)),
                pipelined_tau(BufferedClockTree(tree)),
            )
        )
    for n in MESH_SIZES:
        array = mesh(n, n)
        tree = htree_for_array(array)
        rows.append(
            (
                "mesh",
                n,
                equipotential_tau(tree),
                equipotential_tau(tree, wire_model=ElmoreWireModel(r=0.1, c=0.1)),
                pipelined_tau(BufferedClockTree(tree)),
            )
        )
    return rows


def test_eq_vs_pipelined(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "eq_vs_pipelined",
        "EQ: distribution time tau — equipotential (linear alpha*P and "
        "quadratic RC) vs buffered pipelined (flat)",
        ["family", "n", "tau eq (alpha*P)", "tau eq (RC)", "tau pipelined"],
        rows,
    )
    linear_rows = [r for r in rows if r[0] == "linear"]
    # Equipotential grows ~linearly with P; RC grows ~quadratically.
    assert linear_rows[-1][2] > 100 * linear_rows[0][2]
    assert linear_rows[-1][3] / linear_rows[-2][3] > 10
    # Pipelined flat within each family (segment geometry differs between
    # a unit-edge spine and an H-tree's half-unit edges).
    for family in ("linear", "mesh"):
        pipelined = [r[4] for r in rows if r[0] == family]
        assert max(pipelined) - min(pipelined) < 0.3
    # Crossover: pipelined wins from n >= 16 on linear arrays.
    for r in linear_rows:
        if r[1] >= 16:
            assert r[4] < r[2]
