"""Schema checks for the machine-readable benchmark artifacts.

Marked ``obs`` so CI can run just the observability validation step:
``pytest benchmarks/ -m obs``.  The first test regenerates the E1 JSON
artifact (no pytest-benchmark fixture needed), the second validates every
JSON file present under ``benchmarks/results/`` — a malformed artifact
would silently poison the perf trajectory later PRs read.
"""

import glob
import json
import os

import pytest

from conftest import RESULTS_DIR
from repro.obs.schema import validate_benchmark_result

pytestmark = pytest.mark.obs


def test_e1_emits_schema_valid_json():
    from bench_e1_inverter_string import emit_chips_table, run_chips

    emit_chips_table(run_chips())
    path = os.path.join(RESULTS_DIR, "e1_inverter_chips.json")
    with open(path) as fh:
        obj = json.load(fh)
    assert validate_benchmark_result(obj) == []
    assert obj["name"] == "e1_inverter_chips"
    assert len(obj["rows"]) == 5
    assert all(len(row) == len(obj["headers"]) for row in obj["rows"])


def test_all_result_json_well_formed():
    paths = sorted(glob.glob(os.path.join(RESULTS_DIR, "*.json")))
    if not paths:
        pytest.skip("no JSON artifacts emitted yet — run a benchmark first")
    for path in paths:
        with open(path) as fh:
            obj = json.load(fh)
        errors = validate_benchmark_result(obj)
        assert not errors, f"{os.path.basename(path)}: {errors}"
