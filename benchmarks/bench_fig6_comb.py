"""Exp F6 — comb layouts give a 1D array any aspect ratio at constant skew
(Fig. 6).

Sweeps tooth heights for a fixed array size: the bounding-box aspect ratio
ranges over an order of magnitude while the summation-model neighbor skew
stays exactly constant.
"""

from repro.clocktree.spine import comb_linear_array
from repro.core.models import SummationModel, max_skew_bound

from conftest import emit_table

N = 256
TOOTH_HEIGHTS = [1, 2, 4, 8, 16, 32, 64]
MODEL = SummationModel(m=1.0, eps=0.1)


def run_sweep():
    rows = []
    for h in TOOTH_HEIGHTS:
        array, tree = comb_linear_array(N, tooth_height=h)
        sigma = max_skew_bound(tree, array.communicating_pairs(), MODEL)
        box = array.layout.bounding_box()
        rows.append((h, box.width, box.height, array.layout.aspect_ratio, sigma))
    return rows


def test_fig6_comb_any_aspect_ratio(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "fig6_comb",
        f"F6: comb layouts of a {N}-cell linear array "
        "(aspect ratio swings; summation sigma constant)",
        ["tooth height", "width", "height", "aspect", "sigma"],
        rows,
    )
    sigmas = [r[4] for r in rows]
    aspects = [r[3] for r in rows]
    assert max(sigmas) == min(sigmas)
    assert max(aspects) / min(aspects) > 10
