"""Exp F7 — the Section V-B lower bound on n x n meshes (Fig. 7).

For each mesh size, try every applicable clocking scheme, take the *best*
(smallest) achievable max skew under A11, and compare it against the
tree-independent Omega(n) floor and against the executed-proof certificate.
"Who wins": nobody — the best scheme's sigma grows linearly, with doubling
ratios ~2, exactly the paper's impossibility claim.
"""

from repro.analysis.scaling import classify_growth, doubling_ratios
from repro.arrays.topologies import mesh
from repro.clocktree.builders import kdtree_clock, serpentine_clock
from repro.clocktree.htree import htree_for_array
from repro.core.lower_bound import lower_bound_value, prove_skew_lower_bound

from conftest import emit_table

SIZES = [4, 8, 16, 24, 32]
BETA = 0.1
SCHEMES = [
    ("htree", htree_for_array),
    ("serpentine", serpentine_clock),
    ("kdtree", kdtree_clock),
]


def run_sweep():
    rows = []
    for n in SIZES:
        array = mesh(n, n)
        best_sigma, best_name, best_cert = None, None, None
        for name, builder in SCHEMES:
            tree = builder(array)
            cert = prove_skew_lower_bound(tree, array, beta=BETA)
            if best_sigma is None or cert.sigma < best_sigma:
                best_sigma, best_name, best_cert = cert.sigma, name, cert
        floor = lower_bound_value(n, beta=BETA)
        rows.append(
            (
                n,
                best_name,
                best_sigma,
                floor,
                best_cert.branch,
                best_cert.bound,
                best_cert.separator_fraction,
            )
        )
    return rows


def test_fig7_no_scheme_escapes_omega_n(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "fig7_lower_bound",
        f"F7: best-scheme max skew on n x n meshes vs the Omega(n) floor "
        f"(beta={BETA}; certificate branch and bound from the executed proof)",
        ["n", "best scheme", "sigma best", "Omega(n) floor", "branch", "cert bound", "sep frac"],
        rows,
    )
    sizes = [r[0] for r in rows]
    sigmas = [r[2] for r in rows]
    # Linear growth of the best achievable sigma.
    assert classify_growth(sizes, sigmas).law == "linear"
    for _x, ratio in doubling_ratios(sizes, sigmas):
        assert 1.5 <= ratio <= 2.6
    # Every instance respects the tree-independent floor.
    assert all(r[2] >= r[3] - 1e-9 for r in rows)
