"""Exp F3a — the Fig. 3(a) scheme fails under the summation model
(Section V opening remark).

The balanced dissection clock for a linear array keeps all cells
equidistant (fine under the difference model) but connects the two middle
neighbors by a tree path spanning the whole array: under the summation
model their skew bound grows linearly.  "Who wins": the spine (Theorem 3)
by a factor that itself grows linearly — the crossover is at n ~ a few
cells.
"""

from repro.analysis.scaling import classify_growth
from repro.core.theorems import fig3a_counterexample_sweep, theorem3_sweep

from conftest import emit_table

SIZES = [4, 8, 16, 32, 64, 128, 256, 512, 1024]


def run_sweep():
    dissection = fig3a_counterexample_sweep(SIZES)
    spine = theorem3_sweep(SIZES)
    return dissection, spine


def test_fig3a_dissection_skew_grows_linearly(benchmark):
    dissection, spine = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (d.size, d.sigma, s.sigma, d.sigma / s.sigma)
        for d, s in zip(dissection, spine)
    ]
    emit_table(
        "fig3a_summation_failure",
        "F3a: summation-model sigma, Fig. 3(a) dissection vs Fig. 4 spine "
        "(m=1, eps=0.1; dissection grows ~linearly, spine flat)",
        ["n", "sigma dissection", "sigma spine", "ratio"],
        rows,
    )
    fit = classify_growth([d.size for d in dissection], [d.sigma for d in dissection])
    assert fit.law == "linear"
    assert classify_growth([s.size for s in spine], [s.sigma for s in spine]).law == "constant"
    # the loss factor grows roughly linearly too
    assert rows[-1][3] > 100
