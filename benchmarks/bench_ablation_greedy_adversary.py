"""Ablation — a search-based adversary against the lower bound.

The Fig. 7 bench minimizes over fixed schemes; here a greedy agglomerative
optimizer *searches* for a good tree.  On meshes it ties the best fixed
scheme and still grows Omega(n) (the impossibility is real, not an artifact
of the scheme menu); on 1D arrays it loses badly to the spine — good
clustering is not good clocking, the Theorem 3 trick has to be known.
High-bisection networks (butterfly) are included for the Theorem 6 frontier.
"""

from repro.analysis.scaling import classify_growth
from repro.arrays.networks import butterfly
from repro.arrays.topologies import linear_array, mesh
from repro.clocktree.builders import serpentine_clock
from repro.clocktree.htree import htree_for_array
from repro.clocktree.optimize import greedy_clock_tree, max_pair_path_length
from repro.clocktree.spine import spine_clock

from conftest import emit_table

BETA = 0.1


def run_mesh_sweep():
    rows = []
    for n in (4, 8, 16, 24):
        array = mesh(n, n)
        greedy = BETA * max_pair_path_length(greedy_clock_tree(array), array)
        fixed = BETA * min(
            max_pair_path_length(htree_for_array(array), array),
            max_pair_path_length(serpentine_clock(array), array),
        )
        rows.append((n, greedy, fixed, greedy / fixed))
    return rows


def run_linear_and_butterfly():
    rows = []
    for n in (16, 64, 256):
        array = linear_array(n)
        greedy = BETA * max_pair_path_length(greedy_clock_tree(array), array)
        spine = BETA * max_pair_path_length(spine_clock(array), array)
        rows.append((f"linear-{n}", greedy, spine))
    for k in (2, 3, 4):
        array = butterfly(k)
        greedy = BETA * max_pair_path_length(greedy_clock_tree(array), array)
        serp = BETA * max_pair_path_length(serpentine_clock(array), array)
        rows.append((f"butterfly-{k}", greedy, min(greedy, serp)))
    return rows


def test_greedy_adversary_on_meshes(benchmark):
    rows = benchmark.pedantic(run_mesh_sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_greedy_mesh",
        f"Greedy-search clock trees on n x n meshes (beta={BETA}): "
        "competitive with fixed schemes, still Omega(n)",
        ["n", "sigma greedy", "sigma best fixed", "ratio"],
        rows,
    )
    sizes = [r[0] for r in rows]
    greedy = [r[1] for r in rows]
    assert classify_growth(sizes, greedy).law == "linear"
    assert all(r[3] <= 1.6 for r in rows)  # competitive...
    assert all(r[1] > 0 for r in rows)     # ...but never constant


def test_greedy_adversary_vs_spine_and_networks(benchmark):
    rows = benchmark.pedantic(run_linear_and_butterfly, rounds=1, iterations=1)
    emit_table(
        "ablation_greedy_linear_networks",
        "Greedy trees on 1D arrays (vs the spine) and butterflies "
        "(Theorem 6 frontier): clustering quality != clocking quality",
        ["instance", "sigma greedy", "sigma reference"],
        rows,
    )
    linear_rows = [r for r in rows if str(r[0]).startswith("linear")]
    # Spine constant; greedy dissection-like growth.
    assert all(abs(r[2] - linear_rows[0][2]) < 1e-9 for r in linear_rows)
    assert linear_rows[-1][1] > 10 * linear_rows[-1][2]
