"""Exp F8 — hybrid synchronization keeps cycle time flat (Fig. 8,
Section VI), while a global equipotential clock degrades with the diameter.

Includes the element-size ablation called out in DESIGN.md: larger elements
pay more local distribution, smaller ones more handshake per cell; cycle
time is constant in *array* size for every element size.
"""

from repro.arrays.topologies import mesh
from repro.clocktree.builders import serpentine_clock
from repro.core.hybrid import build_hybrid
from repro.core.parameters import equipotential_tau
from repro.sim.hybrid_sim import simulate_hybrid

from conftest import emit_table

SIZES = [8, 16, 32, 48]
ELEMENT_SIZES = [2.0, 4.0, 8.0]
DELTA = 1.0


def run_sweep():
    rows = []
    for n in SIZES:
        array = mesh(n, n)
        global_tau = equipotential_tau(serpentine_clock(array))
        cycles = {}
        for e in ELEMENT_SIZES:
            scheme = build_hybrid(array, element_size=e)
            cycles[e] = simulate_hybrid(scheme, steps=25, delta=DELTA, jitter=0.2, seed=n).cycle_time
        rows.append((n, n * n, global_tau, cycles[2.0], cycles[4.0], cycles[8.0]))
    return rows


def test_fig8_hybrid_flat_vs_global_clock(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "fig8_hybrid",
        "F8: hybrid cycle time (by element size) vs equipotential global "
        "clock tau on n x n meshes (hybrid flat, global ~linear in n^2... "
        "the serpentine spine length)",
        ["n", "cells", "global tau", "hybrid e=2", "hybrid e=4", "hybrid e=8"],
        rows,
    )
    # Hybrid flat in array size for every element size.
    for col in (3, 4, 5):
        values = [r[col] for r in rows]
        assert max(values) - min(values) <= 0.25 * min(values)
    # Global clock degrades.
    assert rows[-1][2] > 10 * rows[0][2]
    # Crossover: the hybrid wins from the smallest size we sweep.
    assert rows[0][3] < rows[0][2] or rows[1][3] < rows[1][2]
