"""Exp E2 — the sqrt(n) cycle-time law at fixed yield (Section VII).

With zero design bias, per-stage rise/fall discrepancies random-walk down
the string: the cycle time a fixed fraction of chips can meet grows as
``sqrt(n)``.  Analytic curve (normal quantile) against Monte-Carlo measured
quantiles of simulated chip populations.
"""

import math

from repro.analysis.montecarlo import summarize
from repro.analysis.scaling import classify_growth
from repro.delay.buffer import InverterPairModel
from repro.sim.inverter import InverterString, fixed_yield_cycle_time

from conftest import emit_table

SIZES = [64, 256, 1024, 4096]
VARIANCE = 1e-4
STAGE = 1.0
YIELD = 0.9
CHIPS = 120


def run_sweep():
    rows = []
    for n in SIZES:
        analytic = fixed_yield_cycle_time(n, VARIANCE, STAGE, YIELD)
        cycles = sorted(
            InverterString(
                n, InverterPairModel(nominal=STAGE, variance=VARIANCE, seed=seed)
            ).pipelined_cycle()
            for seed in range(CHIPS)
        )
        measured = cycles[int(YIELD * CHIPS)]  # the 90th-percentile chip
        rows.append((n, analytic, measured, measured - 2 * STAGE))
    return rows


def test_e2_sqrt_n_fixed_yield(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "e2_sqrt_scaling",
        f"E2: cycle time at {YIELD:.0%} yield vs string length "
        f"(variance={VARIANCE}, stage={STAGE}; both curves grow ~sqrt(n))",
        ["n", "analytic (endpoint)", "measured p90 (prefix)", "distortion part"],
        rows,
    )
    sizes = [r[0] for r in rows]
    # The distortion component (cycle minus the fixed 2*stage term)
    # quadruples-n -> doubles: a sqrt law.
    distortion = [r[3] for r in rows]
    fit = classify_growth(sizes, distortion)
    assert fit.law == "sqrt"
    for a, b in zip(distortion, distortion[1:]):
        assert b / a == (b / a)  # finite
        assert 1.5 <= b / a <= 2.6  # ~2 per 4x n
