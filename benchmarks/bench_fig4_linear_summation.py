"""Exp F4 — Theorem 3: spine-clocked 1D arrays at a size-independent period
(Fig. 4), shown both analytically and on a live buffered realization.

For each size: model sigma, empirical sigma of a buffered tree with
``m +- eps`` variation, pipelined tau (constant), and the minimum safe
period measured by the clocked simulator on a real FIR computation.
"""

from repro.arrays.systolic import build_fir_array
from repro.arrays.topologies import linear_array
from repro.clocktree.buffered import BufferedClockTree
from repro.clocktree.spine import spine_clock
from repro.core.models import SummationModel, max_skew_bound
from repro.delay.variation import BoundedUniformVariation
from repro.sim.clock_distribution import ClockSchedule
from repro.sim.clocked import ClockedArraySimulator

from conftest import emit_table

SIZES = [8, 32, 128, 512, 2048]
M, EPS = 1.0, 0.1


def run_sweep():
    model = SummationModel(m=M, eps=EPS)
    rows = []
    for n in SIZES:
        array = linear_array(n)
        tree = spine_clock(array)
        pairs = array.communicating_pairs()
        buffered = BufferedClockTree(
            tree, wire_variation=BoundedUniformVariation(m=M, epsilon=EPS, seed=n)
        )
        rows.append(
            (
                n,
                max_skew_bound(tree, pairs, model),
                buffered.max_skew(pairs),
                buffered.tau(),
                buffered.latency(),
            )
        )
    return rows


def measure_safe_period(taps):
    program = build_fir_array([1.0] * taps, [1.0] * (taps + 4))
    order = ["snk"] + list(range(taps - 1, -1, -1)) + ["src"]
    buffered = BufferedClockTree(
        spine_clock(program.array, order=order),
        wire_variation=BoundedUniformVariation(m=M, epsilon=EPS, seed=taps),
    )
    sched = ClockSchedule.from_buffered_tree(buffered, 10.0, program.array.comm.nodes())
    return ClockedArraySimulator(program, sched, delta=1.0).minimum_safe_period()


def test_fig4_spine_constant_sigma_and_tau(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit_table(
        "fig4_linear_summation",
        "F4: spine-clocked linear arrays under the summation model "
        f"(m={M}, eps={EPS}; sigma and tau flat, latency grows harmlessly)",
        ["n", "sigma (model)", "sigma (buffered)", "tau", "latency"],
        rows,
    )
    sigmas = [r[1] for r in rows]
    taus = [r[3] for r in rows]
    assert max(sigmas) == min(sigmas)
    assert max(taus) - min(taus) < 0.3
    assert rows[-1][4] > 100 * rows[0][4]  # latency grows, period does not


def test_fig4_safe_period_flat_on_live_computation(benchmark):
    periods = benchmark.pedantic(
        lambda: [measure_safe_period(k) for k in (4, 16, 64)], rounds=1, iterations=1
    )
    emit_table(
        "fig4_safe_period",
        "F4 (live): minimum safe clock period of a spine-clocked FIR array",
        ["taps", "min safe period"],
        list(zip((4, 16, 64), periods)),
    )
    assert max(periods) - min(periods) < 1.0
