"""Legacy setup shim: metadata lives in pyproject.toml.

Present so that ``pip install -e .`` works in offline environments whose
setuptools lacks PEP 660 wheel support.
"""

from setuptools import setup

setup()
