"""A complete systolic machine: odd-even sorting under realistic clocking.

Run:  python examples/systolic_sorting_pipeline.py

Puts several pieces together the way a machine designer would: a linear
sorting array, re-laid as a comb (Fig. 6) to fit a near-square die, clocked
by a spine running along the data path (Theorem 3), with buffered pipelined
distribution and process variation — then verified cycle-accurately against
the ideal lockstep semantics, at the same clock period for every size.
"""

import random

from repro import (
    BufferedClockTree,
    ClockSchedule,
    ClockedArraySimulator,
    comb_linear_array,
    spine_clock,
)
from repro.arrays.systolic import build_odd_even_sorter
from repro.delay.variation import BoundedUniformVariation

PERIOD = 9.0   # chosen once; reused for every array size
DELTA = 4.0    # compute time; exceeds neighbor skew (hold safety)


def run_sorter(n: int, seed: int) -> None:
    rng = random.Random(seed)
    values = [rng.uniform(-100, 100) for _ in range(n)]
    program = build_odd_even_sorter(values)

    # Clock wire along the array (Theorem 3 scheme), with m +- eps variation.
    buffered = BufferedClockTree(
        spine_clock(program.array),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.15, seed=seed),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, PERIOD, program.array.comm.nodes()
    )
    sim = ClockedArraySimulator(program, schedule, delta=DELTA)
    result = sim.run()
    status = "OK " if (result.clean and result.result == sorted(values)) else "FAIL"
    print(
        f"  n = {n:4d}: skew = {buffered.max_skew(program.array.communicating_pairs()):.2f}, "
        f"min safe period = {sim.minimum_safe_period():.2f}, "
        f"ran at {PERIOD}, violations = {len(result.violations):2d}  [{status}]"
    )
    assert result.clean
    assert result.result == sorted(values)


def main() -> None:
    print("=" * 72)
    print(f"1. Sorting at one fixed clock period ({PERIOD}) across sizes")
    print("=" * 72)
    for n in (8, 32, 128):
        run_sorter(n, seed=n)
    print("  -> the same cell design and clock period extend to any length:")
    print("     modularity and expandability, as Section V-A promises.\n")

    print("=" * 72)
    print("2. The comb layout: the same array on dies of any shape (Fig. 6)")
    print("=" * 72)
    n = 240
    print(f"  a {n}-cell array folded into combs:")
    print(f"  {'tooth height':>13}  {'die (w x h)':>13}  {'aspect':>7}  {'max skew s':>10}")
    for tooth in (2, 6, 12, 30):
        array, tree = comb_linear_array(n, tooth_height=tooth)
        box = array.layout.bounding_box()
        max_s = max(
            tree.path_length(a, b) for a, b in array.communicating_pairs()
        )
        print(
            f"  {tooth:>13}  {box.width:>5.0f} x {box.height:>5.0f}"
            f"  {array.layout.aspect_ratio:>7.1f}  {max_s:>10.1f}"
        )
    print("  -> any aspect ratio, identical synchronization behaviour.")


if __name__ == "__main__":
    main()
