"""Breaking assumption A8 — and the three ways out.

Run:  python examples/fault_injection_and_recovery.py

Pipelined clocking needs path delays to be invariant over time (A8).  This
example degrades a working clocked array three ways and shows the fixes the
paper offers: timing margins, delay padding ("adding delay to circuits"),
a two-phase discipline, and ultimately the hybrid scheme of Section VI.
"""

from repro import (
    BufferedClockTree,
    ClockSchedule,
    ClockedArraySimulator,
    build_fir_array,
    build_hybrid,
    mesh,
    simulate_hybrid,
    spine_clock,
)
from repro.core.disciplines import SinglePhaseDiscipline, TwoPhaseDiscipline
from repro.core.padding import plan_safe_clocking
from repro.delay.variation import NoVariation
from repro.sim.faults import JitteredSchedule, slow_subtree, summarize_violations


def base_setup(period=10.0):
    program = build_fir_array([1.0, 2.0, -1.0], [3.0, 1.0, 4.0, 1.0, 5.0])
    buffered = BufferedClockTree(
        spine_clock(program.array, order=["snk", 2, 1, 0, "src"]),
        wire_variation=NoVariation(),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, period, program.array.comm.nodes()
    )
    return program, buffered, schedule


def main() -> None:
    print("=" * 72)
    print("1. Baseline: a clean pipelined-clocked FIR array")
    print("=" * 72)
    program, buffered, schedule = base_setup()
    result = ClockedArraySimulator(program, schedule, delta=1.0).run()
    print(f"  violations: {len(result.violations)}; result correct: "
          f"{result.result == program.run_lockstep()}\n")

    print("=" * 72)
    print("2. A8 breaks: clock arrival times jitter between events")
    print("=" * 72)
    for amplitude in (0.3, 2.0, 4.0):
        jittered = JitteredSchedule(schedule, amplitude=amplitude, seed=7)
        run = ClockedArraySimulator(program, jittered, delta=1.0).run()
        summary = summarize_violations(run.violations)
        print(f"  jitter +-{amplitude}: {summary.total} violations "
              f"({summary.stale} stale, {summary.race} race); "
              f"correct: {run.result == program.run_lockstep()}")
    print("  -> small drift is absorbed by margins; large drift corrupts data.\n")

    print("=" * 72)
    print("3. A degraded buffer: downstream clocks arrive late -> race-through")
    print("=" * 72)
    # Clock running WITH the data; a slow buffer makes receivers' clocks lag
    # their senders' by more than the data delay: hold hazards appear.
    coflow = BufferedClockTree(
        spine_clock(program.array, order=["src", 0, 1, 2, "snk"]),
        wire_variation=NoVariation(),
    )
    victim = ("tap", 2)  # the stations from cell 1 onward tick late
    slowed = slow_subtree(coflow, victim, extra_delay=3.0,
                          cells=program.array.comm.nodes(), period=10.0)
    broken = ClockedArraySimulator(program, slowed, delta=1.0)
    hazards = broken.hold_hazards()
    print(f"  hold hazards after the fault : {hazards}")
    bad = broken.run()
    print(f"  uncorrected run: clean = {bad.clean}, correct = "
          f"{bad.result == program.run_lockstep()}")
    plan = plan_safe_clocking(program.array, slowed, delta=1.0)
    fixed = ClockedArraySimulator(program, slowed, delta=1.0,
                                  edge_padding=plan.padding)
    run = fixed.run()
    print(f"  padding plan: {plan.padded_edges} edges, "
          f"{plan.total_padding:.1f} total delay added "
          f"('adding delay to circuits', Section I)")
    print(f"  after padding: clean = {run.clean}, correct = "
          f"{run.result == program.run_lockstep()}\n")

    print("=" * 72)
    print("4. Discipline choice: two-phase buys race immunity with period")
    print("=" * 72)
    sigma = 3.0  # the fault-induced skew above
    one = SinglePhaseDiscipline(t_hold=0.1)
    two = TwoPhaseDiscipline(nonoverlap=3.2, t_hold=0.1)
    print(f"  single-phase at sigma={sigma}: "
          f"{one.evaluate(sigma, 1.0, 2.0, min_data_delay=0.0).detail}")
    print(f"  two-phase    at sigma={sigma}: "
          f"{two.evaluate(sigma, 1.0, 2.0).detail}; "
          f"period {two.min_period(sigma, 1.0, 2.0):.1f} vs "
          f"{one.min_period(sigma, 1.0, 2.0):.1f}\n")

    print("=" * 72)
    print("5. When drift cannot be bounded: the hybrid scheme (Section VI)")
    print("=" * 72)
    for n in (8, 24):
        array = mesh(n, n)
        scheme = build_hybrid(array, element_size=4.0)
        res = simulate_hybrid(scheme, steps=30, delta=1.0, jitter=0.5, seed=n)
        print(f"  {n}x{n} mesh with 50% per-step jitter: cycle "
              f"{res.cycle_time:.2f} (bound {res.analytic_cycle_time:.2f}) — "
              f"no resynchronization ever needed")
    print("  -> handshakes tolerate arbitrary drift; that is their whole point.")


if __name__ == "__main__":
    main()
