"""Quickstart: clock a systolic array and see the paper's core results.

Run:  python examples/quickstart.py

Walks through the library's main objects in ~5 minutes of reading:
build an array, clock it three ways, compare skew models, and execute a
real systolic computation under a skewed clock.
"""

from repro import (
    BufferedClockTree,
    ClockSchedule,
    ClockedArraySimulator,
    DifferenceModel,
    SummationModel,
    build_fir_array,
    dissection_tree_for_linear,
    htree_for_array,
    linear_array,
    max_skew_bound,
    mesh,
    spine_clock,
)
from repro.delay.variation import BoundedUniformVariation


def main() -> None:
    print("=" * 70)
    print("1. A one-dimensional systolic array, clocked by a spine (Fig. 4)")
    print("=" * 70)
    summation = SummationModel(m=1.0, eps=0.1)
    for n in (16, 256, 4096):
        array = linear_array(n)
        clk = spine_clock(array)
        sigma = max_skew_bound(clk, array.communicating_pairs(), summation)
        print(f"  n = {n:5d}: worst neighbor skew sigma = {sigma:.2f}  (constant!)")
    print("  -> Theorem 3: 1D arrays run at a size-independent clock period.\n")

    print("=" * 70)
    print("2. The same array under the Fig. 3(a) H-tree-style dissection")
    print("=" * 70)
    for n in (16, 256, 4096):
        array = linear_array(n)
        clk = dissection_tree_for_linear(array)
        sigma = max_skew_bound(clk, array.communicating_pairs(), summation)
        print(f"  n = {n:5d}: sigma = {sigma:8.1f}  (grows with n)")
    print("  -> equidistance is not enough once variation accumulates along paths.\n")

    print("=" * 70)
    print("3. A 2D mesh under the difference model: the H-tree is perfect")
    print("=" * 70)
    difference = DifferenceModel(m=1.0)
    for n in (4, 16):
        array = mesh(n, n)
        clk = htree_for_array(array)
        sigma = max_skew_bound(clk, array.communicating_pairs(), difference)
        print(f"  {n:2d}x{n:<2d} mesh: sigma = {sigma}  (all cells equidistant, d = 0)")
    print("  -> Theorem 2. But see examples/mesh_skew_explorer.py for what the")
    print("     summation model does to 2D meshes (the paper's lower bound).\n")

    print("=" * 70)
    print("4. Run an actual FIR filter under a skewed, pipelined clock")
    print("=" * 70)
    weights = [1.0, 2.0, -1.0, 0.5]
    xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    program = build_fir_array(weights, xs)
    # Clock runs against the data direction (the safe regime).
    order = ["snk", 3, 2, 1, 0, "src"]
    buffered = BufferedClockTree(
        spine_clock(program.array, order=order),
        wire_variation=BoundedUniformVariation(m=1.0, epsilon=0.2, seed=42),
    )
    schedule = ClockSchedule.from_buffered_tree(
        buffered, period=8.0, cells=program.array.comm.nodes()
    )
    sim = ClockedArraySimulator(program, schedule, delta=1.0)
    print(f"  empirical max skew : {buffered.max_skew(program.array.communicating_pairs()):.3f}")
    print(f"  pipelined tau      : {buffered.tau():.3f}")
    print(f"  min safe period    : {sim.minimum_safe_period():.3f} (we run at 8.0)")
    result = sim.run()
    print(f"  timing violations  : {len(result.violations)}")
    print(f"  clocked result     : {[round(v, 2) for v in result.result]}")
    print(f"  ideal lockstep     : {[round(v, 2) for v in program.run_lockstep()]}")
    assert result.clean and result.result == program.run_lockstep()
    print("  -> identical: the skewed clocked array simulates the ideal array.")


if __name__ == "__main__":
    main()
