"""Section VIII: a pipelined searching tree machine on an H-tree layout.

Run:  python examples/tree_machine_search.py

Builds a Bentley-Kung style membership-search machine: queries broadcast
down a complete binary tree, answers OR-combine upward, one query per tick.
On an H-tree layout the top edges are long; pipeline registers (the same
count on every edge of a level) bound every wire segment, keeping the
per-tick work constant while total latency stays O(sqrt(N)).
"""

from repro.treemachine import (
    SearchTreeMachine,
    htree_tree_layout,
    level_edge_lengths,
    pipeline_tree,
)


def main() -> None:
    depth = 6
    array = htree_tree_layout(depth)
    n = array.size
    print("=" * 70)
    print(f"1. An H-tree layout of a depth-{depth} tree ({n} nodes)")
    print("=" * 70)
    box = array.layout.bounding_box()
    print(f"  die: {box.width:.0f} x {box.height:.0f} (area {box.area:.0f} for {n} cells)")
    print("  edge length by level:", {k: round(v, 2) for k, v in level_edge_lengths(array, depth).items()})
    print("  -> long edges near the root; the paper pipelines them.\n")

    print("=" * 70)
    print("2. Pipeline registers bound every segment")
    print("=" * 70)
    pt = pipeline_tree(array, depth, segment_limit=1.0)
    print(f"  registers inserted     : {pt.total_registers}")
    print(f"  registers per level    : {pt.registers_per_level}")
    print(f"  longest wire segment   : {pt.max_segment_length:.2f}")
    print(f"  root-to-leaf latency   : {pt.root_to_leaf_latency()} ticks")
    print(f"  register area overhead : {pt.register_area() / n:.2f} per cell\n")

    print("=" * 70)
    print("3. Run a pipelined membership search: one query per tick")
    print("=" * 70)
    machine = SearchTreeMachine(depth, pipelined=pt)
    stored = [3, 14, 15, 92, 65, 35]
    queries = [3, 4, 14, 15, 16, 92, 100, 65, 35, 36]
    commands = [("ins", k) for k in stored] + [("q", k) for k in queries]
    result = machine.run(commands)
    print(f"  stored keys : {stored}")
    for key, hit in zip(queries, result.results):
        print(f"    query {key:>3} -> {'hit ' if hit else 'miss'}")
    print(f"  pipeline interval : {result.interval_ticks} tick (constant in N)")
    print(f"  query latency     : {result.latency_ticks} ticks (~2 sqrt(N))")
    expected = [k in set(stored) for k in queries]
    assert result.results == expected
    print("  -> all answers correct, full throughput.")


if __name__ == "__main__":
    main()
