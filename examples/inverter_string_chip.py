"""The Section VII experiment: pipelining a clock down 2048 inverters.

Run:  python examples/inverter_string_chip.py

Reproduces the paper's chip measurements in simulation — 34 us
equipotential vs 500 ns pipelined (68x), consistent across five chips —
then explores the probabilistic regime the paper analyzes: with no design
bias, random stage discrepancies random-walk, and the cycle time a fixed
fraction of chips can meet grows as sqrt(n).
"""

from repro.delay.buffer import InverterPairModel
from repro.sim.inverter import (
    InverterString,
    fixed_yield_cycle_time,
    paper_calibrated_model,
)


def main() -> None:
    print("=" * 70)
    print("1. Five chips, calibrated to the paper's measurements")
    print("=" * 70)
    print(f"  {'chip':>4}  {'equipotential':>14}  {'pipelined':>10}  {'speedup':>8}")
    for seed in range(5):
        chip = InverterString(2048, paper_calibrated_model(seed))
        r = chip.result()
        print(
            f"  {seed:>4}  {r.equipotential_cycle*1e6:>11.1f} us"
            f"  {r.pipelined_cycle*1e9:>7.0f} ns  {r.speedup:>7.1f}x"
        )
    print("  paper:            34.0 us      500 ns     68.0x  (five chips alike)\n")

    print("=" * 70)
    print("2. Why 68x? The pipelined period only pays per-stage costs")
    print("=" * 70)
    chip = InverterString(2048, paper_calibrated_model(0))
    r = chip.result()
    print(f"  sum of all stage delays (both edges) : {r.equipotential_cycle*1e6:.1f} us")
    print(f"  slowest single stage                 : {r.max_stage_delay*1e9:.2f} ns")
    print(f"  worst accumulated rise/fall bias     : {r.max_prefix_discrepancy*1e9:.0f} ns")
    print(f"  pipelined period = 2*(stage + bias)  : {r.pipelined_cycle*1e9:.0f} ns")
    print("  -> dozens of clock edges travel the string simultaneously.\n")

    print("=" * 70)
    print("3. No design bias: the sqrt(n) yield law")
    print("=" * 70)
    variance = 1e-4
    print(f"  {'n':>6}  {'cycle @ 90% yield':>18}  {'ratio to previous':>18}")
    previous = None
    for n in (64, 256, 1024, 4096):
        cycle = fixed_yield_cycle_time(n, variance, stage_delay=0.0, yield_fraction=0.9)
        ratio = "" if previous is None else f"{cycle / previous:18.2f}"
        print(f"  {n:>6}  {cycle:>18.4f}  {ratio:>18}")
        previous = cycle
    print("  -> quadrupling the string doubles the cycle: a square-root law.")
    print("     (The paper: 'some chips will run with cycle times at least")
    print("      proportional to sqrt(n)'.)\n")

    print("=" * 70)
    print("4. Pulse survival: launch edges at and below the pipelined period")
    print("=" * 70)
    chip = InverterString(400, InverterPairModel(nominal=1.0, bias=0.05, seed=1))
    period = chip.pipelined_cycle()
    ok = chip.propagate_edges([0.0, period / 2, period, 3 * period / 2])
    print(f"  at the period ({period:.1f}): arrival gaps "
          f"{[round(b - a, 2) for a, b in zip(ok, ok[1:])]} (all positive, pulse lives)")
    squeezed = chip.propagate_edges([0.0, chip.max_prefix_discrepancy() * 0.5])
    print(f"  below it: second edge arrives {squeezed[0] - squeezed[1]:.2f} early "
          "-> the pulse has collapsed in transit.")


if __name__ == "__main__":
    main()
