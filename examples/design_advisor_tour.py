"""The engineering layer: advice, audits, disciplines, and figures.

Run:  python examples/design_advisor_tour.py

A machine designer's session: ask the advisor what to do for three
different machines, audit the chosen configuration against the paper's
assumptions, size the clocking discipline, and export the figure as SVG.
"""

import os
import tempfile

from repro import linear_array, mesh
from repro.arrays.topologies import complete_binary_tree
from repro.clocktree.buffered import BufferedClockTree
from repro.core.advisor import recommend
from repro.core.assumptions import audit, failures
from repro.core.disciplines import SinglePhaseDiscipline, TwoPhaseDiscipline
from repro.core.models import DifferenceModel, SummationModel
from repro.core.schemes import build_scheme
from repro.viz.svg import figure_to_svg, save_svg


def show(rec) -> None:
    print(f"  -> scheme: {rec.scheme}   sigma: {rec.sigma:.3g}   "
          f"period: {rec.period:.3g}   scales: {rec.scales_with_size}")
    for line in rec.rationale:
        print(f"     . {line}")
    print()


def main() -> None:
    print("=" * 72)
    print("1. Three machines, three recommendations")
    print("=" * 72)
    print("a 512-cell linear systolic filter (on-chip, summation model):")
    show(recommend(linear_array(512), SummationModel(m=1.0, eps=0.1)))
    print("a 16x16 mesh on a tuned discrete-component board (difference model):")
    show(recommend(mesh(16, 16), DifferenceModel(m=1.0)))
    print("a 16x16 mesh on-chip (summation model, tight delta):")
    show(recommend(mesh(16, 16), SummationModel(m=1.0, eps=0.5), delta=0.2,
                   hybrid_threshold=2.0, element_size=2.0))

    print("=" * 72)
    print("2. Audit the chosen linear-array configuration (A1..A10)")
    print("=" * 72)
    array = linear_array(64)
    tree = build_scheme("spine", array)
    buffered = BufferedClockTree(tree)
    checks = audit(array, tree, buffered=buffered, s_budget=1.0)
    for check in checks:
        status = "PASS" if check.holds else ("FAIL" if check.checkable else "n/a ")
        print(f"  [{status}] {check.assumption}: {check.detail}")
    hard_failures = [c for c in failures(checks) if not c.assumption.startswith("A9")]
    print(f"  hard failures: {len(hard_failures)}\n")

    print("=" * 72)
    print("3. Pick a discipline for sigma = 1.1, delta = 1, tau = 2.1")
    print("=" * 72)
    sigma, delta, tau = 1.1, 1.0, 2.1
    one = SinglePhaseDiscipline(t_setup=0.1, t_hold=0.1)
    two = TwoPhaseDiscipline(nonoverlap=1.3, t_setup=0.1, t_hold=0.1)
    for d in (one, two):
        report = d.evaluate(sigma, delta, tau, min_data_delay=1.3)
        print(f"  {report.discipline:12s} period >= {report.min_period:.2f}  "
              f"race-immune: {report.race_immune}  ({report.detail})")
    print()

    print("=" * 72)
    print("4. Export the Fig. 3(b) figure (H-tree over a mesh) as SVG")
    print("=" * 72)
    array = mesh(8, 8)
    svg = figure_to_svg(array, build_scheme("htree", array),
                        title="H-tree clocking an 8x8 mesh (Fig. 3b)")
    path = os.path.join(tempfile.gettempdir(), "fig3b_htree.svg")
    save_svg(path, svg)
    print(f"  wrote {path} ({len(svg)} bytes, "
          f"{svg.count('class=' + chr(34) + 'clock' + chr(34))} clock edges)")


if __name__ == "__main__":
    main()
