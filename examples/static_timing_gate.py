"""Static timing as a sign-off gate: analyze designs without simulating.

Run:  python examples/static_timing_gate.py

Shows the `repro.sta` workflow end to end: build a design, read its
per-edge setup/hold slack, check the A1-A11 design rules, find the
minimum feasible period by bisection, break the design on purpose, and
let `pad_for_races` repair it — every verdict cross-checked against the
clocked simulator, which the analyzer itself never runs.
"""

from repro.sta import (
    STAAnalyzer,
    analyze_slack,
    design_for_workload,
    minimum_feasible_period,
    pad_for_races,
    render_report,
)


def main() -> None:
    print("=" * 70)
    print("1. Sign off a matvec design without running it")
    print("=" * 70)
    design = design_for_workload("matvec", size=4, seed=11)
    report = STAAnalyzer(design).report()
    print(render_report(report))
    assert report.verdict == "clean"
    assert design.simulator().run().clean  # the simulator agrees
    print("  -> static clean, and the simulator confirms.\n")

    print("=" * 70)
    print("2. How fast can it go? Bisect the minimum feasible period")
    print("=" * 70)
    t_exact = minimum_feasible_period(design, mode="exact")
    t_bound = minimum_feasible_period(design, mode="bound")
    print(f"  running period       : {design.period:.3f}")
    print(f"  min feasible (exact) : {t_exact:.3f}  (this schedule's offsets)")
    print(f"  min feasible (bound) : {t_bound:.3f}  (any schedule the skew model admits)")
    at_limit = analyze_slack(design.with_period(t_exact))
    print(f"  worst setup slack at the limit: {at_limit.worst_setup_slack:.2e}\n")

    print("=" * 70)
    print("3. Overclock it: the analyzer names the edges that will fail")
    print("=" * 70)
    tight = design.with_period(t_exact * 0.6)
    analysis = analyze_slack(tight)
    stale = analysis.stale_edges()
    print(f"  stale edges flagged  : {len(stale)} of {len(analysis.edges)}")
    violated = {v.edge for v in tight.simulator().run().violations}
    print(f"  simulator violations : {len(violated)} edges")
    assert violated <= set(stale) | set(analysis.race_edges())
    print("  -> every simulated violation was statically flagged.\n")

    print("=" * 70)
    print("4. Repair a racy schedule with computed hold padding")
    print("=" * 70)
    racy = design_for_workload("matvec", size=3, seed=7, pad_races=False, delta=1e-6)
    before = analyze_slack(racy)
    print(f"  race edges before    : {len(before.race_edges())}")
    racy.edge_padding = pad_for_races(racy)
    after = analyze_slack(racy)
    print(f"  race edges after     : {len(after.race_edges())}")
    print(f"  hold hazards (sim)   : {len(racy.simulator().hold_hazards())}")
    assert not after.race_edges() and not racy.simulator().hold_hazards()
    print("  -> A11's directional discipline, enforced by construction.")


if __name__ == "__main__":
    main()
