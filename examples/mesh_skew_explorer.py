"""The two-dimensional wall, and the hybrid way around it.

Run:  python examples/mesh_skew_explorer.py

Section V-B of the paper proves that NO clock tree keeps communicating-cell
skew bounded on a growing n x n mesh (summation model).  This example:

1. sweeps three clocking schemes over growing meshes and watches the best
   achievable skew grow linearly anyway;
2. runs the paper's proof as an executable certificate on each instance;
3. builds the Section VI hybrid scheme and shows its cycle time flat where
   the global clock degrades.
"""

from repro import (
    build_hybrid,
    equipotential_tau,
    lower_bound_value,
    mesh,
    prove_skew_lower_bound,
    serpentine_clock,
    simulate_hybrid,
)
from repro.clocktree.builders import kdtree_clock
from repro.clocktree.htree import htree_for_array

BETA = 0.1
SCHEMES = [
    ("htree", htree_for_array),
    ("serpentine", serpentine_clock),
    ("kdtree", kdtree_clock),
]


def main() -> None:
    print("=" * 72)
    print("1. Best achievable max skew on n x n meshes (A11, beta = 0.1)")
    print("=" * 72)
    print(f"  {'n':>3}  {'htree':>8}  {'serpent':>8}  {'kdtree':>8}  "
          f"{'best':>8}  {'Omega(n) floor':>14}")
    for n in (4, 8, 16, 24, 32):
        array = mesh(n, n)
        sigmas = {}
        for name, builder in SCHEMES:
            tree = builder(array)
            sigmas[name] = max(
                BETA * tree.path_length(a, b)
                for a, b in array.communicating_pairs()
            )
        floor = lower_bound_value(n, beta=BETA)
        best = min(sigmas.values())
        print(
            f"  {n:>3}  {sigmas['htree']:>8.2f}  {sigmas['serpentine']:>8.2f}  "
            f"{sigmas['kdtree']:>8.2f}  {best:>8.2f}  {floor:>14.3f}"
        )
    print("  -> every scheme grows ~linearly; none beats the floor.\n")

    print("=" * 72)
    print("2. The Section V-B proof, executed on a concrete instance")
    print("=" * 72)
    array = mesh(16, 16)
    cert = prove_skew_lower_bound(serpentine_clock(array), array, beta=BETA)
    print(f"  instance          : 16x16 mesh, serpentine clock")
    print(f"  sigma (min possible under A11) : {cert.sigma:.3f}")
    print(f"  Lemma 5 separator fraction     : {cert.separator_fraction:.3f}")
    print(f"  circle radius sigma/beta       : {cert.radius:.2f}")
    print(f"  cells inside circle            : {cert.cells_in_circle}")
    print(f"  proof branch taken             : {cert.branch}")
    print(f"  certified lower bound          : {cert.bound:.3f}")
    cert.check()
    print("  -> certificate checks: every step of the paper's argument holds.\n")

    print("=" * 72)
    print("3. Hybrid synchronization (Fig. 8) vs a global equipotential clock")
    print("=" * 72)
    print(f"  {'n':>3}  {'global clock tau':>17}  {'hybrid cycle (e=4)':>19}")
    for n in (8, 16, 32, 48):
        array = mesh(n, n)
        tau = equipotential_tau(serpentine_clock(array))
        scheme = build_hybrid(array, element_size=4.0)
        cycle = simulate_hybrid(scheme, steps=25, delta=1.0, jitter=0.2, seed=n).cycle_time
        print(f"  {n:>3}  {tau:>17.1f}  {cycle:>19.2f}")
    print("  -> the hybrid's synchronization paths are all local: flat forever.")


if __name__ == "__main__":
    main()
